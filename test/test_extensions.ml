(* Tests for the beyond-the-core extensions: MISR compaction (the aliasing
   the paper avoids), and static test-set stitching by reordering (the
   Section 2 prior art). *)

module Circuit = Tvs_netlist.Circuit
module Bitvec = Tvs_logic.Bitvec
module Misr = Tvs_scan.Misr
module Static_stitch = Tvs_core.Static_stitch
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Podem = Tvs_atpg.Podem
module Cube = Tvs_atpg.Cube
module Baseline = Tvs_core.Baseline
module Rng = Tvs_util.Rng

(* --- MISR ------------------------------------------------------------- *)

let test_misr_zero_stays_zero () =
  let m = Misr.create ~width:8 ~taps:(Misr.default_taps ~width:8) in
  Misr.absorb_stream m [ Array.make 8 false; Array.make 8 false ];
  Alcotest.(check int) "zero in, zero state" 0 (Bitvec.popcount (Misr.signature m))

let test_misr_single_bit_sensitivity () =
  (* Any single flipped input bit must change the signature (linearity: the
     difference signature of a one-bit error is never zero). *)
  let width = 8 in
  let base = List.init 6 (fun i -> Array.init 10 (fun j -> (i + j) mod 3 = 0)) in
  let base_sig = Misr.signature_of ~width base in
  List.iteri
    (fun cycle word ->
      Array.iteri
        (fun bit _ ->
          let mutated =
            List.mapi
              (fun c w ->
                if c = cycle then Array.mapi (fun b v -> if b = bit then not v else v) w else w)
              base
          in
          ignore word;
          let s = Misr.signature_of ~width mutated in
          Alcotest.(check bool)
            (Printf.sprintf "flip cycle %d bit %d changes signature" cycle bit)
            false (Bitvec.equal s base_sig))
        word)
    base

let test_misr_aliasing_exists () =
  (* Two-bit errors can alias: an error injected at cycle t and its shifted
     copy cancel. Find one by search to document the phenomenon. *)
  let width = 4 in
  let base = List.init 8 (fun _ -> Array.make 4 false) in
  let base_sig = Misr.signature_of ~width base in
  let found = ref false in
  for c1 = 0 to 7 do
    for b1 = 0 to 3 do
      for c2 = 0 to 7 do
        for b2 = 0 to 3 do
          if ((c1, b1) < (c2, b2)) && not !found then begin
            let mutated =
              List.mapi
                (fun c w ->
                  Array.mapi
                    (fun b v ->
                      if (c = c1 && b = b1) || (c = c2 && b = b2) then not v else v)
                    w)
                base
            in
            if Bitvec.equal (Misr.signature_of ~width mutated) base_sig then found := true
          end
        done
      done
    done
  done;
  Alcotest.(check bool) "a 4-bit MISR aliases some 2-bit error" true !found

let test_misr_deterministic () =
  let stream = List.init 5 (fun i -> Array.init 12 (fun j -> (i * j) mod 5 < 2)) in
  let a = Misr.signature_of ~width:12 stream in
  let b = Misr.signature_of ~width:12 stream in
  Alcotest.(check string) "same signature" (Bitvec.to_string a) (Bitvec.to_string b)

let test_misr_fold_wide_input () =
  (* Inputs wider than the register fold by XOR rather than truncate: a bit
     beyond the width must still matter. *)
  let width = 4 in
  let a = [ Array.make 9 false ] in
  let b = [ Array.init 9 (fun i -> i = 8) ] in
  Alcotest.(check bool) "bit 8 reaches the signature" false
    (Bitvec.equal (Misr.signature_of ~width a) (Misr.signature_of ~width b))

let test_misr_bad_args () =
  Alcotest.(check bool) "zero width rejected" true
    (try
       ignore (Misr.create ~width:0 ~taps:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tap out of range rejected" true
    (try
       ignore (Misr.create ~width:4 ~taps:[ 4 ]);
       false
     with Invalid_argument _ -> true)

let test_misr_lfsr_period () =
  (* With maximal-length taps and no data, a nonzero state must cycle
     through all 2^w - 1 nonzero states. *)
  let width = 5 in
  let m = Misr.create ~width ~taps:(Misr.default_taps ~width) in
  Misr.absorb m [| true |] (* seed state 10000-ish via data *);
  let seen = Hashtbl.create 64 in
  let zero = Array.make width false in
  let steps = ref 0 in
  let rec loop () =
    let s = Bitvec.to_string (Misr.signature m) in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      incr steps;
      Misr.absorb m zero;
      loop ()
    end
  in
  loop ();
  Alcotest.(check int) "maximal period" ((1 lsl width) - 1) (Hashtbl.length seen)

let qcheck_misr_linearity =
  (* A MISR over GF(2) is linear: from the zero state,
     sig(x xor y) = sig(x) xor sig(y). This is the algebra behind aliasing
     analysis (an error stream aliases iff its own signature is zero). *)
  QCheck.Test.make ~name:"MISR is linear over GF(2)" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 10) (array_of_size (Gen.return 6) bool))
              (list_of_size Gen.(int_range 1 10) (array_of_size (Gen.return 6) bool)))
    (fun (x, y) ->
      (* Pad to equal length with zero words. *)
      let n = max (List.length x) (List.length y) in
      let pad l = l @ List.init (n - List.length l) (fun _ -> Array.make 6 false) in
      let x = pad x and y = pad y in
      let xy = List.map2 (fun a b -> Array.map2 (fun p q -> p <> q) a b) x y in
      let width = 8 in
      let s = Misr.signature_of ~width in
      Bitvec.to_string (s xy)
      = Bitvec.to_string (Bitvec.xor (s x) (s y)))

(* --- static stitching --------------------------------------------------- *)

let prep_s27 () =
  let c = Tvs_circuits.S27.circuit () in
  let faults = Fault_gen.collapsed c in
  let ctx = Podem.create c in
  let baseline = Baseline.run ~rng:(Rng.of_string "ext:baseline") ctx ~faults in
  (c, faults, baseline)

let test_static_order_is_permutation () =
  let c, _, baseline = prep_s27 () in
  let r = Static_stitch.reorder c ~rng:(Rng.of_string "st") ~cubes:baseline.Baseline.cubes in
  let sorted = Array.copy r.Static_stitch.order in
  Array.sort compare sorted;
  Alcotest.(check (array int))
    "permutation of the cube set"
    (Array.init (Array.length baseline.Baseline.cubes) (fun i -> i))
    sorted

let test_static_first_full_load () =
  let c, _, baseline = prep_s27 () in
  let r = Static_stitch.reorder c ~rng:(Rng.of_string "st2") ~cubes:baseline.Baseline.cubes in
  (match r.Static_stitch.shifts with
  | first :: rest ->
      Alcotest.(check int) "full first load" (Circuit.num_flops c) first;
      List.iter (fun s -> Alcotest.(check bool) "shift within chain" true (s <= Circuit.num_flops c)) rest
  | [] -> Alcotest.fail "empty schedule");
  Alcotest.(check int) "one shift per cube" (Array.length baseline.Baseline.cubes)
    (List.length r.Static_stitch.shifts)

let test_static_saves_stimulus () =
  let c, _, baseline = prep_s27 () in
  let r = Static_stitch.reorder c ~rng:(Rng.of_string "st3") ~cubes:baseline.Baseline.cubes in
  let n = Array.length baseline.Baseline.cubes in
  let full = n * Circuit.num_flops c in
  Alcotest.(check bool) "stimulus bits do not exceed full shifting" true
    (r.Static_stitch.stimulus_bits <= full);
  Alcotest.(check bool) "memory ratio <= 1" true (r.Static_stitch.memory_ratio <= 1.0);
  Alcotest.(check (float 0.0001)) "time unchanged (separate chains)" 1.0 r.Static_stitch.time_ratio

let test_static_preserves_coverage () =
  (* The reordered, refilled set must still detect every fault the cubes
     target: each cube's specified bits survive the overlap merge. *)
  let c, faults, baseline = prep_s27 () in
  let rng = Rng.of_string "st4" in
  let r = Static_stitch.reorder c ~rng ~cubes:baseline.Baseline.cubes in
  ignore r;
  (* Rebuild the applied vectors by replaying the same construction. *)
  let sim = Fault_sim.create c in
  let detected = Array.make (Array.length faults) false in
  (* Replay: reorder is deterministic for a fixed rng seed, so run it again
     and recompute applied vectors by simulation of the same schedule. *)
  let rng2 = Rng.of_string "st4" in
  let r2 = Static_stitch.reorder c ~rng:rng2 ~cubes:baseline.Baseline.cubes in
  Alcotest.(check bool) "deterministic" true (r.Static_stitch.order = r2.Static_stitch.order);
  (* Coverage check under the separate-chain (full observability) model:
     apply cubes in the new order with fresh random fill; the specified bits
     guarantee detection regardless of fill, so full-shift application in
     any order keeps coverage. *)
  Array.iter
    (fun idx ->
      let cube = baseline.Baseline.cubes.(idx) in
      let v = Cube.fill_random rng cube in
      Array.iteri
        (fun i hit -> if hit then detected.(i) <- true)
        (Fault_sim.detected_faults sim ~pi:v.Cube.pi ~state:v.Cube.scan faults))
    r.Static_stitch.order;
  let caught = Array.fold_left (fun n d -> if d then n + 1 else n) 0 detected in
  Alcotest.(check bool) "most faults still caught" true
    (caught >= Array.length faults - List.length baseline.Baseline.redundant
              - List.length baseline.Baseline.aborted - 2)

let test_static_rejects_empty () =
  let c, _, _ = prep_s27 () in
  Alcotest.(check bool) "empty set rejected" true
    (try
       ignore (Static_stitch.reorder c ~rng:(Rng.of_string "e") ~cubes:[||]);
       false
     with Invalid_argument _ -> true)

(* --- LFSR ----------------------------------------------------------------- *)

module Lfsr = Tvs_scan.Lfsr

let test_lfsr_maximal_periods () =
  List.iter
    (fun width ->
      Alcotest.(check bool) (Printf.sprintf "width %d maximal" width) true
        (Lfsr.period_is_maximal ~width))
    [ 3; 4; 5; 6; 7; 8 ]

let test_lfsr_deterministic () =
  let a = Lfsr.create ~seed:7 ~width:12 () in
  let b = Lfsr.create ~seed:7 ~width:12 () in
  Alcotest.(check (array bool)) "same stream" (Lfsr.next_vector a 64) (Lfsr.next_vector b 64)

let test_lfsr_zero_seed_escapes () =
  let t = Lfsr.create ~seed:0 ~width:8 () in
  let bits = Lfsr.next_vector t 32 in
  Alcotest.(check bool) "not stuck at zero" true (Array.exists (fun b -> b) bits)

let test_lfsr_balanced () =
  (* A maximal-length sequence is nearly balanced over a full period. *)
  let width = 8 in
  let t = Lfsr.create ~width () in
  let period = (1 lsl width) - 1 in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (Lfsr.next_vector t period) in
  Alcotest.(check int) "2^(w-1) ones per period" (1 lsl (width - 1)) ones

(* --- compactor -------------------------------------------------------------- *)

module Compactor = Tvs_atpg.Compactor

let test_compactor_merge_shrinks () =
  let cube pi scan : Cube.t =
    {
      Cube.pi = Array.init (String.length pi) (fun i -> Tvs_logic.Ternary.of_char pi.[i]);
      scan = Array.init (String.length scan) (fun i -> Tvs_logic.Ternary.of_char scan.[i]);
    }
  in
  let cubes = [ cube "1XX" "X0"; cube "X0X" "X0"; cube "0XX" "1X" ] in
  let merged = Compactor.merge_cubes cubes in
  Alcotest.(check int) "three cubes merge to two" 2 (List.length merged);
  Alcotest.(check (float 0.001)) "ratio" (2.0 /. 3.0)
    (Compactor.compaction_ratio ~before:3 ~after:2)

let test_compactor_reverse_order () =
  let c, faults, baseline = prep_s27 () in
  let sim = Fault_sim.create c in
  (* Duplicate the test set: reverse-order compaction must discard at least
     the redundant copies. *)
  let doubled = Array.append baseline.Baseline.vectors baseline.Baseline.vectors in
  let kept = Compactor.reverse_order sim ~faults ~vectors:doubled in
  Alcotest.(check bool) "duplicates removed" true
    (Array.length kept <= Array.length baseline.Baseline.vectors);
  (* Coverage must be untouched. *)
  let covered vectors =
    let detected = Array.make (Array.length faults) false in
    Array.iter
      (fun (v : Cube.vector) ->
        Array.iteri
          (fun i hit -> if hit then detected.(i) <- true)
          (Fault_sim.detected_faults sim ~pi:v.Cube.pi ~state:v.Cube.scan faults))
      vectors;
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected
  in
  Alcotest.(check int) "coverage preserved" (covered doubled) (covered kept)

let test_compactor_empty () =
  let c, faults, _ = prep_s27 () in
  let sim = Fault_sim.create c in
  let kept = Compactor.reverse_order sim ~faults ~vectors:[||] in
  Alcotest.(check int) "empty in, empty out" 0 (Array.length kept)

(* --- diagnosis ---------------------------------------------------------------- *)

module Diagnosis = Tvs_fault.Diagnosis

let test_diagnosis_roundtrip () =
  let c, faults, baseline = prep_s27 () in
  let sim = Parallel.create c in
  let tests =
    Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) baseline.Baseline.vectors
  in
  let dict = Diagnosis.build sim ~faults ~tests in
  Alcotest.(check bool) "most faults detected" true
    (Diagnosis.num_detected dict > Array.length faults / 2);
  Alcotest.(check bool) "resolution >= 1" true (Diagnosis.resolution dict >= 1.0);
  (* Every fault's own response diagnoses back to a candidate set that
     contains it (or reads as defect-free when undetected). *)
  Array.iter
    (fun f ->
      let observed = Diagnosis.respond sim ~tests ~fault:f () in
      match Diagnosis.diagnose dict ~observed with
      | Diagnosis.Candidates cands ->
          Alcotest.(check bool) "fault among its candidates" true
            (List.exists (Tvs_fault.Fault.equal f) cands)
      | Diagnosis.No_defect -> () (* undetected by this test set *)
      | Diagnosis.Unknown_defect -> Alcotest.fail "dictionary entry must exist")
    faults

let test_diagnosis_good_machine () =
  let c, faults, baseline = prep_s27 () in
  let sim = Parallel.create c in
  let tests =
    Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) baseline.Baseline.vectors
  in
  let dict = Diagnosis.build sim ~faults ~tests in
  let observed = Diagnosis.respond sim ~tests () in
  Alcotest.(check bool) "clean machine diagnosed clean" true
    (Diagnosis.diagnose dict ~observed = Diagnosis.No_defect)

let test_diagnosis_unknown_defect () =
  let c, faults, baseline = prep_s27 () in
  let sim = Parallel.create c in
  let tests =
    Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) baseline.Baseline.vectors
  in
  let dict = Diagnosis.build sim ~faults ~tests in
  (* An observation matching no modelled fault: flip every bit of the good
     response. *)
  let observed = List.map (Array.map not) (Diagnosis.respond sim ~tests ()) in
  (match Diagnosis.diagnose dict ~observed with
  | Diagnosis.Unknown_defect -> ()
  | Diagnosis.No_defect | Diagnosis.Candidates _ ->
      Alcotest.fail "all-bits-flipped should match no single stuck-at fault")

(* --- broadcast scan ----------------------------------------------------- *)

module Broadcast_scan = Tvs_core.Broadcast_scan

let test_broadcast_two_modes () =
  let c, faults, baseline = prep_s27 () in
  let r =
    Broadcast_scan.run c ~rng:(Rng.of_string "bc") ~partitions:3 ~faults
      ~fallback:baseline.Baseline.vectors ()
  in
  Alcotest.(check int) "partition count echoed" 3 r.Broadcast_scan.partitions;
  Alcotest.(check bool) "some parallel vectors" true (r.Broadcast_scan.parallel_vectors > 0);
  Alcotest.(check bool) "ratios at or below 1" true
    (r.Broadcast_scan.memory_ratio <= 1.0 && r.Broadcast_scan.time_ratio <= 1.0)

let test_broadcast_full_coverage_via_fallback () =
  let c, faults, baseline = prep_s27 () in
  let r =
    Broadcast_scan.run c ~rng:(Rng.of_string "bc2") ~partitions:3 ~faults
      ~fallback:baseline.Baseline.vectors ()
  in
  (* The fallback set covers everything it can; broadcast must not lose it. *)
  let reachable =
    let sim = Fault_sim.create c in
    let detected = Array.make (Array.length faults) false in
    Array.iter
      (fun (v : Cube.vector) ->
        Array.iteri
          (fun i hit -> if hit then detected.(i) <- true)
          (Fault_sim.detected_faults sim ~pi:v.Cube.pi ~state:v.Cube.scan faults))
      baseline.Baseline.vectors;
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected
  in
  Alcotest.(check (float 0.0001)) "coverage equals fallback's reach"
    (float_of_int reachable /. float_of_int (Array.length faults))
    r.Broadcast_scan.coverage

let test_broadcast_one_partition_degenerates () =
  (* One partition = ordinary serial scan: the broadcast phase still runs
     but each "broadcast" is a full-width random vector. *)
  let c, faults, baseline = prep_s27 () in
  let r =
    Broadcast_scan.run c ~rng:(Rng.of_string "bc3") ~partitions:1 ~faults
      ~fallback:baseline.Baseline.vectors ()
  in
  Alcotest.(check bool) "runs" true (r.Broadcast_scan.parallel_vectors >= 0)

let test_broadcast_rejects_bad_partitions () =
  let c, faults, baseline = prep_s27 () in
  Alcotest.(check bool) "non-positive rejected" true
    (try
       ignore
         (Broadcast_scan.run c ~rng:(Rng.of_string "bc4") ~partitions:0 ~faults
            ~fallback:baseline.Baseline.vectors ());
       false
     with Invalid_argument _ -> true)

(* --- harness studies ----------------------------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_misr_study_renders () =
  let out = Tvs_harness.Experiments.misr_study ~circuit:"s444" () in
  Alcotest.(check bool) "mentions exact observation" true
    (contains ~needle:"exact observation" out)

let () =
  Alcotest.run "extensions"
    [
      ( "misr",
        [
          Alcotest.test_case "zero fixpoint" `Quick test_misr_zero_stays_zero;
          Alcotest.test_case "single-bit sensitivity" `Quick test_misr_single_bit_sensitivity;
          Alcotest.test_case "aliasing exists" `Quick test_misr_aliasing_exists;
          Alcotest.test_case "deterministic" `Quick test_misr_deterministic;
          Alcotest.test_case "wide inputs fold" `Quick test_misr_fold_wide_input;
          Alcotest.test_case "argument validation" `Quick test_misr_bad_args;
          Alcotest.test_case "maximal LFSR period" `Quick test_misr_lfsr_period;
          QCheck_alcotest.to_alcotest qcheck_misr_linearity;
        ] );
      ( "static-stitch",
        [
          Alcotest.test_case "order is a permutation" `Quick test_static_order_is_permutation;
          Alcotest.test_case "first load full" `Quick test_static_first_full_load;
          Alcotest.test_case "stimulus savings" `Quick test_static_saves_stimulus;
          Alcotest.test_case "coverage preserved" `Quick test_static_preserves_coverage;
          Alcotest.test_case "empty set rejected" `Quick test_static_rejects_empty;
        ] );
      ( "lfsr",
        [
          Alcotest.test_case "maximal periods" `Quick test_lfsr_maximal_periods;
          Alcotest.test_case "deterministic" `Quick test_lfsr_deterministic;
          Alcotest.test_case "zero-seed lockup avoided" `Quick test_lfsr_zero_seed_escapes;
          Alcotest.test_case "balanced sequence" `Quick test_lfsr_balanced;
        ] );
      ( "compactor",
        [
          Alcotest.test_case "cube merging" `Quick test_compactor_merge_shrinks;
          Alcotest.test_case "reverse-order pass" `Quick test_compactor_reverse_order;
          Alcotest.test_case "empty input" `Quick test_compactor_empty;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "roundtrip" `Quick test_diagnosis_roundtrip;
          Alcotest.test_case "good machine" `Quick test_diagnosis_good_machine;
          Alcotest.test_case "unknown defect" `Quick test_diagnosis_unknown_defect;
        ] );
      ( "broadcast-scan",
        [
          Alcotest.test_case "two modes" `Quick test_broadcast_two_modes;
          Alcotest.test_case "coverage via fallback" `Quick test_broadcast_full_coverage_via_fallback;
          Alcotest.test_case "single partition" `Quick test_broadcast_one_partition_degenerates;
          Alcotest.test_case "bad partitions rejected" `Quick test_broadcast_rejects_bad_partitions;
        ] );
      ("studies", [ Alcotest.test_case "misr study renders" `Quick test_misr_study_renders ]);
    ]
