(* The Verilog subsystem: frontend parse errors with real line numbers,
   emitter/frontend round-trips on randomized circuits, format detection,
   and lint determinism on Verilog input. *)

module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Synth = Tvs_circuits.Synth
module Profiles = Tvs_circuits.Profiles
module Frontend = Tvs_verilog.Frontend
module Emitter = Tvs_verilog.Emitter
module Loader = Tvs_verilog.Loader
module Xcheck = Tvs_verilog.Xcheck
module Lint = Tvs_lint.Lint

(* Same family as test_properties: deterministic small circuits whose net
   names (PI%d / FF%d / G%d) are already legal Verilog identifiers, so the
   emitter's sanitiser is the identity and round-trips are exact. *)
let tiny_circuit i =
  let styles = [| Profiles.Balanced; Profiles.Shallow; Profiles.Deep |] in
  Synth.generate
    {
      Profiles.name = Printf.sprintf "vprop%d" i;
      npi = 2 + (i mod 5);
      npo = 1 + (i mod 4);
      nff = i mod 7;
      ngates = 20 + (5 * (i mod 11));
      style = styles.(i mod 3);
    }

(* Structural identity up to net renumbering: compare the canonical .bench
   prints line-set-wise plus the headline counts, as test_properties does
   for the .bench round-trip. *)
let isomorphic a b =
  let statement_lines c =
    String.split_on_char '\n' (Bench_format.to_string c)
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.sort compare
  in
  Circuit.num_nets a = Circuit.num_nets b
  && Circuit.num_inputs a = Circuit.num_inputs b
  && Circuit.num_flops a = Circuit.num_flops b
  && Circuit.num_outputs a = Circuit.num_outputs b
  && statement_lines a = statement_lines b

(* 1. parse (emit c) rebuilds c exactly, for arbitrary circuits. *)
let qcheck_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog round-trip parse(emit c) = c" ~count:50
    QCheck.(int_range 0 64)
    (fun i ->
      let c = tiny_circuit i in
      let e = Emitter.emit c in
      isomorphic c (Frontend.parse_string ~name:(Circuit.name c) e.Emitter.text))

(* 2. Scan-mode emission re-parses to the functional netlist plus exactly
   the scan-out alias: the frontend drops si/se/clk, so scan_in and scan_en
   vanish from the PIs, while `assign scan_out = <tail q>` survives as one
   BUF gate driving one extra output. *)
let qcheck_scan_roundtrip_functional =
  QCheck.Test.make ~name:"scan emission re-parses to functional netlist" ~count:30
    QCheck.(int_range 0 64)
    (fun i ->
      let c = tiny_circuit i in
      QCheck.assume (Circuit.num_flops c > 0);
      let e = Emitter.emit ~scan:true c in
      let c' = Frontend.parse_string e.Emitter.text in
      Circuit.num_inputs c' = Circuit.num_inputs c
      && Circuit.num_flops c' = Circuit.num_flops c
      && Circuit.num_outputs c' = Circuit.num_outputs c + 1
      && Circuit.num_nets c' = Circuit.num_nets c + 1)

(* 3. Emission is deterministic and idempotent: emitting the re-parsed
   circuit reproduces the text byte for byte. *)
let qcheck_emit_idempotent =
  QCheck.Test.make ~name:"emit is idempotent across a round-trip" ~count:30
    QCheck.(int_range 0 64)
    (fun i ->
      let c = tiny_circuit i in
      let e = Emitter.emit c in
      let e' = Emitter.emit (Frontend.parse_string ~name:(Circuit.name c) e.Emitter.text) in
      e'.Emitter.text = e.Emitter.text)

(* 4. Lint on Verilog input is jobs-invariant: the rendered report is the
   same whatever the worker-pool width. *)
let qcheck_lint_jobs_invariant =
  QCheck.Test.make ~name:"lint report on verilog is jobs-invariant" ~count:10
    QCheck.(int_range 0 32)
    (fun i ->
      let c = tiny_circuit i in
      let text = (Emitter.emit c).Emitter.text in
      let report jobs =
        Tvs_util.Pool.set_default_jobs jobs;
        Fun.protect
          ~finally:(fun () -> Tvs_util.Pool.set_default_jobs 1)
          (fun () ->
            Lint.to_json_string
              (Lint.run_source ~format:Loader.Verilog ~name:(Circuit.name c) text))
      in
      report 1 = report 4)

(* Seeded parse failures: each malformed source must raise Parse_error
   carrying the 1-based line number of the offending construct. *)
let error_cases =
  [
    ( "vector range",
      "module m (a, y);\n  input [3:0] a;\n  output y;\nendmodule\n",
      2,
      "vector ranges" );
    ( "unsupported initial block",
      "module m (clk, y);\n  input clk;\n  output y;\n  reg y;\n\
       \  initial y = 1'b0;\nendmodule\n",
      5,
      "unsupported construct" );
    ( "behavioural event control",
      "module m (clk, y);\n  input clk;\n  output y;\n\
       \  always @(posedge clk) y = 1'b0;\nendmodule\n",
      4,
      "unexpected character" );
    ( "parameter override",
      "module m (d, q);\n  input d;\n  output q;\n  tvs_dff #(1) ff (q, d, clk);\nendmodule\n",
      4,
      "parameter overrides" );
    ( "unknown cell",
      "module m (a, y);\n  input a;\n  output y;\n  mystery u0 (.z(y), .i(a));\nendmodule\n",
      4,
      "mystery" );
    ( "missing endmodule",
      "module m (a, y);\n  input a;\n  output y;\n  buf (y, a);\n",
      4,
      "" );
    ( "two design modules",
      "module m1 (a, y);\n  input a;\n  output y;\n  buf (y, a);\nendmodule\n\
       module m2 (b, z);\n  input b;\n  output z;\n  buf (z, b);\nendmodule\n",
      6,
      "" );
  ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_parse_errors () =
  List.iter
    (fun (label, src, want_line, want_substr) ->
      match Frontend.parse_string src with
      | (_ : Circuit.t) -> Alcotest.failf "%s: expected Parse_error, got a circuit" label
      | exception Bench_format.Parse_error (line, msg) ->
          Alcotest.(check int) (label ^ ": line") want_line line;
          if not (contains msg want_substr) then
            Alcotest.failf "%s: message %S does not mention %S" label msg want_substr)
    error_cases

(* Semantic (cross-statement) errors flow through circuit_of_statements with
   Verilog line numbers attached. *)
let test_semantic_error_lines () =
  let src =
    "module m (a, b, y);\n  input a, b;\n  output y;\n  wire u;\n\
     \  and g1 (u, a, b);\n  and g2 (u, b, a);\n  xor g3 (y, u, a);\nendmodule\n"
  in
  match Frontend.parse_string src with
  | (_ : Circuit.t) -> Alcotest.fail "expected duplicate-driver Parse_error"
  | exception Bench_format.Parse_error (line, msg) ->
      Alcotest.(check int) "duplicate driver reported on the second and" 6 line;
      Alcotest.(check bool) "message names the net" true (contains msg "\"u\"")

(* Format detection: extension wins, then content. *)
let test_detection () =
  let check l want got = Alcotest.(check string) l (Loader.format_name want) (Loader.format_name got) in
  check "ext .v" Loader.Verilog (Loader.detect ~path:"x.v" "# looks like bench");
  check "ext .bench" Loader.Bench (Loader.detect ~path:"x.bench" "module m; endmodule");
  check "content module" Loader.Verilog (Loader.detect "  // hdl\nmodule m (a); input a; endmodule");
  check "content backtick" Loader.Verilog (Loader.detect "`timescale 1ns/1ps\nmodule m; endmodule");
  check "content bench" Loader.Bench (Loader.detect "# s27\nINPUT(G0)\n");
  check "bare netlist defaults to bench" Loader.Bench (Loader.detect "INPUT(G0)\nOUTPUT(G0)\n")

(* The ignored-pin rule end to end: a pure-clock/scan port file parses to
   the same circuit as the built-in s27 profile. *)
let test_s27_example_equivalent () =
  let file = Filename.concat (Filename.concat "../examples" "verilog") "s27.v" in
  let file = if Sys.file_exists file then file else "examples/verilog/s27.v" in
  if Sys.file_exists file then begin
    let c = Loader.load_file file in
    let builtin = Tvs_circuits.S27.circuit () in
    Alcotest.(check int) "PI" (Circuit.num_inputs builtin) (Circuit.num_inputs c);
    Alcotest.(check int) "PO" (Circuit.num_outputs builtin) (Circuit.num_outputs c);
    Alcotest.(check int) "FF" (Circuit.num_flops builtin) (Circuit.num_flops c)
  end

(* The internal xcheck oracle on a tiny hand-checked case: a single AND
   gate, two capture ops. (External simulation is exercised in CI where
   iverilog is installed; here we pin the trace the testbench will embed.) *)
let test_internal_trace () =
  let c =
    Frontend.parse_string ~name:"tand"
      "module tand (a, b, y);\n  input a, b;\n  output y;\n  and g (y, a, b);\nendmodule\n"
  in
  let program = Xcheck.Comb [ [| true; true |]; [| true; false |] ] in
  Alcotest.(check (list string)) "comb trace" [ "C 1"; "C 0" ] (Xcheck.internal_trace c program)

let () =
  Alcotest.run "verilog"
    [
      ( "frontend",
        [
          Alcotest.test_case "seeded parse errors carry line numbers" `Quick test_parse_errors;
          Alcotest.test_case "semantic errors carry line numbers" `Quick test_semantic_error_lines;
          Alcotest.test_case "format detection" `Quick test_detection;
          Alcotest.test_case "s27 example matches builtin" `Quick test_s27_example_equivalent;
          Alcotest.test_case "xcheck internal trace" `Quick test_internal_trace;
        ] );
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest qcheck_verilog_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_scan_roundtrip_functional;
          QCheck_alcotest.to_alcotest qcheck_emit_idempotent;
          QCheck_alcotest.to_alcotest qcheck_lint_jobs_invariant;
        ] );
    ]
