(* Unit tests for Tvs_fault: the fault model, list generation, structural
   collapsing, and the batch fault-simulation drivers. *)

module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Rng = Tvs_util.Rng

let fig1 = Tvs_circuits.Fig1.circuit ()

(* --- fault naming / structure --------------------------------------- *)

let test_fault_names () =
  let f = Tvs_circuits.Fig1.paper_fault fig1 "F/0" in
  Alcotest.(check string) "stem name" "F/0" (Fault.name fig1 f);
  let bf = Tvs_circuits.Fig1.paper_fault fig1 "B-D/1" in
  Alcotest.(check string) "branch name" "B-D/1" (Fault.name fig1 bf);
  Alcotest.(check bool) "branch recorded" true (bf.Fault.branch <> None)

let test_fault_equality () =
  let a = Fault.stem_fault 3 true and b = Fault.stem_fault 3 true in
  Alcotest.(check bool) "equal" true (Fault.equal a b);
  Alcotest.(check bool) "hash agrees" true (Fault.hash a = Fault.hash b);
  Alcotest.(check bool) "polarity distinguishes" false (Fault.equal a (Fault.stem_fault 3 false))

(* --- fault list ------------------------------------------------------ *)

let test_all_fault_count_fig1 () =
  (* 6 nets -> 12 stem faults; stems B, D, E have fanout 2 -> 12 branch
     faults. *)
  let faults = Fault_gen.all fig1 in
  Alcotest.(check int) "24 faults" 24 (Array.length faults)

let test_all_faults_distinct () =
  let faults = Fault_gen.all (Tvs_circuits.S27.circuit ()) in
  let tbl = Hashtbl.create 64 in
  Array.iter (fun f -> Hashtbl.replace tbl f ()) faults;
  Alcotest.(check int) "no duplicates" (Array.length faults) (Hashtbl.length tbl)

let test_collapse_shrinks () =
  let c = Tvs_circuits.S27.circuit () in
  let all = Fault_gen.all c in
  let collapsed = Fault_gen.collapsed c in
  Alcotest.(check bool) "collapsed is smaller" true (Array.length collapsed < Array.length all);
  Alcotest.(check bool) "ratio sane" true
    (let r = Fault_gen.collapse_ratio c in
     r > 0.3 && r < 1.0)

let test_collapse_inverter_chain () =
  (* a -> NOT g1 -> NOT g2 (output). All six stem faults collapse to the two
     on g2: input s-a-v == output s-a-(not v) through each inverter. *)
  let b = Circuit.Builder.create "invchain" in
  let a = Circuit.Builder.input b "a" in
  let g1 = Circuit.Builder.gate b ~name:"g1" Gate.Not [ a ] in
  let g2 = Circuit.Builder.gate b ~name:"g2" Gate.Not [ g1 ] in
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finish b in
  let collapsed = Fault_gen.collapsed c in
  Alcotest.(check int) "two classes" 2 (Array.length collapsed);
  Array.iter
    (fun f -> Alcotest.(check int) "representative on the output" (Circuit.find_net c "g2") f.Fault.stem)
    collapsed

let test_collapse_no_merge_through_po () =
  (* When the fanin is itself a primary output its stem stays
     distinguishable, so it must not merge into the gate output fault. *)
  let b = Circuit.Builder.create "pofanin" in
  let a = Circuit.Builder.input b "a" in
  let g1 = Circuit.Builder.gate b ~name:"g1" Gate.Not [ a ] in
  Circuit.Builder.mark_output b g1;
  let g2 = Circuit.Builder.gate b ~name:"g2" Gate.Not [ g1 ] in
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finish b in
  let collapsed = Fault_gen.collapsed c in
  let on_g1 =
    Array.to_list collapsed |> List.filter (fun f -> f.Fault.stem = Circuit.find_net c "g1")
  in
  Alcotest.(check int) "g1 faults survive" 2 (List.length on_g1)

(* Semantic check: every fault removed by collapsing is detected by exactly
   the same random vectors as some surviving representative. We verify the
   weaker (but meaningful) form: any vector detecting a representative set
   detects the full set, and coverage of the two lists agrees. *)
let test_collapse_detection_equivalent () =
  let c = Tvs_circuits.S27.circuit () in
  let all = Fault_gen.all c in
  let collapsed = Fault_gen.collapsed c in
  let sim = Fault_sim.create c in
  let rng = Rng.of_string "collapse-detect" in
  for _ = 1 to 40 do
    let pi = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
    let state = Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) in
    let count faults =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
        (Fault_sim.detected_faults sim ~pi ~state faults)
    in
    (* The collapsed list detects a subset count; every collapsed fault that
       is detected corresponds to >= 1 full-list faults, so the full count is
       at least the collapsed count. *)
    Alcotest.(check bool) "full >= collapsed detections" true (count all >= count collapsed)
  done

(* --- fault simulation ------------------------------------------------ *)

let test_outcomes_fig1 () =
  let sim = Fault_sim.create fig1 in
  let v110 = [| true; true; false |] in
  let fault name = Tvs_circuits.Fig1.paper_fault fig1 name in
  let faults = [| fault "D/0"; fault "E-F/1"; fault "F/0" |] in
  let r = Fault_sim.run_batch sim ~pi:[||] ~state:v110 ~faults in
  Alcotest.(check (array bool)) "good capture is 111" [| true; true; true |] r.Fault_sim.good.Fault_sim.capture;
  (match r.Fault_sim.outcomes.(0) with
  | Fault_sim.Capture_differs cap ->
      Alcotest.(check (array bool)) "D/0 responds 010" [| false; true; false |] cap
  | Fault_sim.Same | Fault_sim.Po_detected -> Alcotest.fail "D/0 must differ in capture");
  (match r.Fault_sim.outcomes.(1) with
  | Fault_sim.Same -> ()
  | Fault_sim.Po_detected | Fault_sim.Capture_differs _ -> Alcotest.fail "E-F/1 is redundant");
  (match r.Fault_sim.outcomes.(2) with
  | Fault_sim.Capture_differs cap ->
      Alcotest.(check (array bool)) "F/0 responds 011" [| false; true; true |] cap
  | Fault_sim.Same | Fault_sim.Po_detected -> Alcotest.fail "F/0 must differ in capture")

let test_po_detection () =
  (* s27 has a primary output; some fault must be Po_detected under some
     vector. *)
  let c = Tvs_circuits.S27.circuit () in
  let sim = Fault_sim.create c in
  let faults = Fault_gen.collapsed c in
  let rng = Rng.of_string "po-detect" in
  let found = ref false in
  for _ = 1 to 50 do
    if not !found then begin
      let pi = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
      let state = Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) in
      let r = Fault_sim.run_batch sim ~pi ~state ~faults in
      if
        Array.exists
          (function Fault_sim.Po_detected -> true | Fault_sim.Same | Fault_sim.Capture_differs _ -> false)
          r.Fault_sim.outcomes
      then found := true
    end
  done;
  Alcotest.(check bool) "some PO detection" true !found

let test_big_batch_chunks () =
  (* More faults than lanes: chunking must cover everything exactly once. *)
  let c = Tvs_circuits.Synth.generate_named "s444" in
  let sim = Fault_sim.create c in
  let faults = Fault_gen.all c in
  Alcotest.(check bool) "more than one chunk" true (Array.length faults > 62);
  let pi = Array.make (Circuit.num_inputs c) true in
  let state = Array.make (Circuit.num_flops c) false in
  let batch = Fault_sim.detected_faults sim ~pi ~state faults in
  (* Cross-check against one-at-a-time simulation. *)
  Array.iteri
    (fun i f ->
      Alcotest.(check bool)
        (Printf.sprintf "fault %d agrees" i)
        (Fault_sim.detects sim ~pi ~state f) batch.(i))
    faults

let test_run_per_state () =
  (* Hidden-fault scenario from Table 1 cycle 2: F/0's machine applies 000
     while the good machine applies 001; the faulty response must be 000
     against the good 010. *)
  let sim = Fault_sim.create fig1 in
  let f0 = Tvs_circuits.Fig1.paper_fault fig1 "F/0" in
  let r =
    Fault_sim.run_per_state sim ~pi:[||]
      ~good_state:[| false; false; true |]
      ~faults:[| f0 |]
      ~states:[| [| false; false; false |] |]
  in
  Alcotest.(check (array bool)) "good response 010" [| false; true; false |] r.Fault_sim.good.Fault_sim.capture;
  (match r.Fault_sim.outcomes.(0) with
  | Fault_sim.Capture_differs cap ->
      Alcotest.(check (array bool)) "faulty response 000" [| false; false; false |] cap
  | Fault_sim.Same | Fault_sim.Po_detected -> Alcotest.fail "F/0 must differ")

let test_per_state_length_check () =
  let sim = Fault_sim.create fig1 in
  let f0 = Tvs_circuits.Fig1.paper_fault fig1 "F/0" in
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Fault_sim.run_per_state sim ~pi:[||] ~good_state:[| false; false; false |] ~faults:[| f0 |] ~states:[||]);
       false
     with Invalid_argument _ -> true)

let qcheck_same_means_same =
  (* Property: an outcome of Same implies serial simulation agrees there is
     no detection. *)
  let c = Tvs_circuits.S27.circuit () in
  let sim = Fault_sim.create c in
  let faults = Fault_gen.collapsed c in
  QCheck.Test.make ~name:"batch outcomes agree with serial detection" ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let pi = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
      let state = Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) in
      let r = Fault_sim.run_batch sim ~pi ~state ~faults in
      Array.for_all
        (fun i ->
          let serial = Fault_sim.detects sim ~pi ~state faults.(i) in
          match r.Fault_sim.outcomes.(i) with
          | Fault_sim.Same -> not serial
          | Fault_sim.Po_detected | Fault_sim.Capture_differs _ -> serial)
        (Array.init (Array.length faults) (fun i -> i)))

(* --- coverage --------------------------------------------------------- *)

module Coverage = Tvs_fault.Coverage

let test_coverage_arithmetic () =
  let c = Coverage.make ~total:100 ~detected:90 ~redundant:5 ~aborted:2 in
  Alcotest.(check (float 0.0001)) "fault coverage" (90.0 /. 95.0) (Coverage.fault_coverage c);
  Alcotest.(check (float 0.0001)) "effectiveness" 0.95 (Coverage.atpg_effectiveness c);
  Alcotest.(check int) "undetected" 5 (Coverage.undetected c)

let test_coverage_edge_cases () =
  let empty = Coverage.make ~total:0 ~detected:0 ~redundant:0 ~aborted:0 in
  Alcotest.(check (float 0.0001)) "empty universe" 1.0 (Coverage.fault_coverage empty);
  Alcotest.(check bool) "overflow rejected" true
    (try
       ignore (Coverage.make ~total:3 ~detected:2 ~redundant:2 ~aborted:0);
       false
     with Invalid_argument _ -> true)

let test_coverage_merge () =
  let a = Coverage.make ~total:10 ~detected:8 ~redundant:1 ~aborted:0 in
  let b = Coverage.make ~total:20 ~detected:15 ~redundant:0 ~aborted:2 in
  let m = Coverage.merge a b in
  Alcotest.(check int) "totals add" 30 m.Coverage.total;
  Alcotest.(check (float 0.0001)) "coverage recomputed" (23.0 /. 29.0) (Coverage.fault_coverage m)

let test_coverage_of_flags () =
  let c = Coverage.of_flags ~detected:[| true; false; true; true |] ~redundant:1 ~aborted:0 in
  Alcotest.(check int) "detected counted" 3 c.Coverage.detected;
  Alcotest.(check (float 0.0001)) "coverage" 1.0 (Coverage.fault_coverage c)

(* Regression: a malformed TVS_BATCH used to fall back to 16 silently; it
   must still fall back, but with a warning through Tvs_util.Env. *)
let test_default_batch_env () =
  let before = Tvs_util.Env.warning_count () in
  Unix.putenv "TVS_BATCH" "lots";
  Alcotest.(check int) "bad TVS_BATCH falls back to 16" 16 (Fault_sim.default_batch ());
  Alcotest.(check int) "and warns" (before + 1) (Tvs_util.Env.warning_count ());
  Alcotest.(check int) "re-read stays quiet" 16 (Fault_sim.default_batch ());
  Alcotest.(check int) "no duplicate warning" (before + 1) (Tvs_util.Env.warning_count ());
  Unix.putenv "TVS_BATCH" "8";
  Alcotest.(check int) "valid TVS_BATCH wins" 8 (Fault_sim.default_batch ());
  Unix.putenv "TVS_BATCH" "16"

let () =
  Alcotest.run "fault"
    [
      ( "model",
        [
          Alcotest.test_case "names" `Quick test_fault_names;
          Alcotest.test_case "equality and hashing" `Quick test_fault_equality;
        ] );
      ( "list",
        [
          Alcotest.test_case "fig1 count" `Quick test_all_fault_count_fig1;
          Alcotest.test_case "no duplicates" `Quick test_all_faults_distinct;
          Alcotest.test_case "collapsing shrinks" `Quick test_collapse_shrinks;
          Alcotest.test_case "inverter chain collapses fully" `Quick test_collapse_inverter_chain;
          Alcotest.test_case "no merge through a PO" `Quick test_collapse_no_merge_through_po;
          Alcotest.test_case "detection-equivalence sanity" `Quick test_collapse_detection_equivalent;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "arithmetic" `Quick test_coverage_arithmetic;
          Alcotest.test_case "edge cases" `Quick test_coverage_edge_cases;
          Alcotest.test_case "merge" `Quick test_coverage_merge;
          Alcotest.test_case "of_flags" `Quick test_coverage_of_flags;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "fig1 outcomes" `Quick test_outcomes_fig1;
          Alcotest.test_case "PO detection" `Quick test_po_detection;
          Alcotest.test_case "chunked batches" `Quick test_big_batch_chunks;
          Alcotest.test_case "per-state (hidden faults)" `Quick test_run_per_state;
          Alcotest.test_case "per-state length check" `Quick test_per_state_length_check;
          QCheck_alcotest.to_alcotest qcheck_same_means_same;
        ] );
      ("knobs", [ Alcotest.test_case "TVS_BATCH misconfiguration" `Quick test_default_batch_env ]);
    ]
