(* Equivalence of the event-driven cone-restricted fault-simulation path with
   the full levelized broadcast path, plus unit tests for the fanout-cone
   index the event path's chunk grouping relies on. *)

module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Profiles = Tvs_circuits.Profiles
module Synth = Tvs_circuits.Synth
module Rng = Tvs_util.Rng

(* Same deterministic family as test_properties.ml. *)
let tiny_profile i =
  let styles = [| Profiles.Balanced; Profiles.Shallow; Profiles.Deep |] in
  {
    Profiles.name = Printf.sprintf "ev-%d" i;
    npi = 2 + (i mod 5);
    npo = 1 + (i mod 4);
    nff = 4 + (i mod 9);
    ngates = 25 + (7 * (i mod 11));
    style = styles.(i mod 3);
  }

let tiny_circuit i = Synth.generate (tiny_profile i)

let random_stimulus rng c =
  ( Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng),
    Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) )

(* A random fault subset biased to include branch faults when present. *)
let random_faults rng c =
  let all = Fault_gen.all c in
  let n = Array.length all in
  let len = 1 + Rng.int rng (min n 150) in
  Array.init len (fun _ -> all.(Rng.int rng n))

let outcome_equal a b =
  match (a, b) with
  | Fault_sim.Same, Fault_sim.Same -> true
  | Fault_sim.Po_detected, Fault_sim.Po_detected -> true
  | Fault_sim.Capture_differs x, Fault_sim.Capture_differs y -> x = y
  | _ -> false

let frame_equal (a : Fault_sim.frame) (b : Fault_sim.frame) =
  a.Fault_sim.po = b.Fault_sim.po && a.Fault_sim.capture = b.Fault_sim.capture

let batch_equal (a : Fault_sim.batch_result) (b : Fault_sim.batch_result) =
  frame_equal a.Fault_sim.good b.Fault_sim.good
  && Array.length a.Fault_sim.outcomes = Array.length b.Fault_sim.outcomes
  && Array.for_all2 outcome_equal a.Fault_sim.outcomes b.Fault_sim.outcomes

(* 0. Ground truth: a naive single-fault bool-level simulator in the legacy
   per-gate-record style — it walks [Circuit.driver] nodes directly, knowing
   nothing of the flat SoA tables, lane packing, injection plans or diff
   masks the production paths share. Agreement across arbitrary circuits and
   fault mixes checks the whole packed stack end to end. *)
let ref_frame c ~fault ~pi ~state =
  let values = Array.make (Circuit.num_nets c) false in
  let stem_override net =
    match fault with
    | Some { Fault.branch = None; stem; stuck } when stem = net -> Some stuck
    | Some _ | None -> None
  in
  let read ~sink ~pin src =
    match fault with
    | Some { Fault.branch = Some (s, p); stuck; _ } when s = sink && p = pin -> stuck
    | Some _ | None -> values.(src)
  in
  let set net v =
    values.(net) <- (match stem_override net with Some b -> b | None -> v)
  in
  Array.iteri (fun i net -> set net pi.(i)) (Circuit.inputs c);
  Array.iteri (fun i net -> set net state.(i)) (Circuit.flops c);
  Array.iter
    (fun net ->
      match Circuit.driver c net with
      | Circuit.Const b -> set net b
      | Circuit.Gate_node (kind, ins) ->
          let inb p = read ~sink:net ~pin:p ins.(p) in
          let fold op seed =
            let acc = ref seed in
            Array.iteri (fun p _ -> acc := op !acc (inb p)) ins;
            !acc
          in
          let v =
            match kind with
            | Gate.And -> fold ( && ) true
            | Gate.Nand -> not (fold ( && ) true)
            | Gate.Or -> fold ( || ) false
            | Gate.Nor -> not (fold ( || ) false)
            | Gate.Xor -> fold ( <> ) false
            | Gate.Xnor -> not (fold ( <> ) false)
            | Gate.Not -> not (inb 0)
            | Gate.Buf -> inb 0
          in
          set net v
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ())
    (Circuit.topo_order c);
  let po = Array.map (fun net -> values.(net)) (Circuit.outputs c) in
  let capture =
    Array.map
      (fun fnet ->
        match Circuit.driver c fnet with
        | Circuit.Flip_flop d -> read ~sink:fnet ~pin:0 d
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ -> assert false)
      (Circuit.flops c)
  in
  (po, capture)

let qcheck_reference_equivalence =
  QCheck.Test.make ~name:"packed paths equal naive reference" ~count:40
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let pi, state = random_stimulus rng c in
      let good = ref_frame c ~fault:None ~pi ~state in
      let expect = Array.map (fun f -> ref_frame c ~fault:(Some f) ~pi ~state <> good) faults in
      List.for_all
        (fun mode ->
          Fault_sim.detected_faults (Fault_sim.create ~mode c) ~pi ~state faults = expect)
        [ Fault_sim.Event_driven; Fault_sim.Full ])

(* 1. run_batch: event-driven outcomes (including Capture_differs payloads)
   are bit-exact with the full path on arbitrary circuits and fault mixes. *)
let qcheck_run_batch_equivalence =
  QCheck.Test.make ~name:"event run_batch equals full path" ~count:50
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let ev = Fault_sim.create c in
      let full = Fault_sim.create ~mode:Fault_sim.Full c in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let pi, state = random_stimulus rng c in
      let a = Fault_sim.run_batch ev ~pi ~state ~faults in
      let b = Fault_sim.run_batch full ~pi ~state ~faults in
      batch_equal a b)

(* 2. run_per_state: per-lane divergent scan states seed correctly. *)
let qcheck_run_per_state_equivalence =
  QCheck.Test.make ~name:"event run_per_state equals full path" ~count:50
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let ev = Fault_sim.create c in
      let full = Fault_sim.create ~mode:Fault_sim.Full c in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let pi, good_state = random_stimulus rng c in
      let nflops = Circuit.num_flops c in
      (* Divergent states: each fault's machine mutates a few bits of the
         good state; some keep it unchanged (the convergent case). *)
      let states =
        Array.map
          (fun _ ->
            let st = Array.copy good_state in
            for _ = 1 to Rng.int rng 3 do
              let j = Rng.int rng nflops in
              st.(j) <- not st.(j)
            done;
            st)
          faults
      in
      let a = Fault_sim.run_per_state ev ~pi ~good_state ~faults ~states in
      let b = Fault_sim.run_per_state full ~pi ~good_state ~faults ~states in
      batch_equal a b)

(* 3. detects / detected_faults ride the same paths. *)
let qcheck_detected_equivalence =
  QCheck.Test.make ~name:"event detected_faults equals full path" ~count:50
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let ev = Fault_sim.create c in
      let full = Fault_sim.create ~mode:Fault_sim.Full c in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let pi, state = random_stimulus rng c in
      Fault_sim.detected_faults ev ~pi ~state faults
      = Fault_sim.detected_faults full ~pi ~state faults)

(* 4. A reused event context stays exact across many stimuli (the engine's
   access pattern: same context, fresh stimulus and fault subset per
   cycle). *)
let qcheck_reused_context_stays_exact =
  QCheck.Test.make ~name:"reused event context stays exact" ~count:15
    QCheck.(pair (int_range 0 20) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let ev = Fault_sim.create c in
      let full = Fault_sim.create ~mode:Fault_sim.Full c in
      let rng = Rng.create (Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 8 do
        let faults = random_faults rng c in
        let pi, state = random_stimulus rng c in
        let a = Fault_sim.run_batch ev ~pi ~state ~faults in
        let b = Fault_sim.run_batch full ~pi ~state ~faults in
        if not (batch_equal a b) then ok := false
      done;
      !ok)

(* --- domain-pool fan-out ------------------------------------------------ *)

(* 5. The tentpole determinism property: fanning chunks across a 4-lane
   domain pool returns exactly what the sequential path returns — caught
   sets, outcomes and Capture_differs payloads — on both execution paths. *)
let qcheck_jobs_equivalence =
  QCheck.Test.make ~name:"jobs=1 equals jobs=4 on both paths" ~count:30
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let pi, state = random_stimulus rng c in
      List.for_all
        (fun mode ->
          let s1 = Fault_sim.create ~mode ~jobs:1 c in
          let s4 = Fault_sim.create ~mode ~jobs:4 c in
          Fault_sim.detected_faults s1 ~pi ~state faults
          = Fault_sim.detected_faults s4 ~pi ~state faults
          && batch_equal
               (Fault_sim.run_batch s1 ~pi ~state ~faults)
               (Fault_sim.run_batch s4 ~pi ~state ~faults))
        [ Fault_sim.Event_driven; Fault_sim.Full ])

(* 6. Regression: the per-cycle work counters are merged in chunk order by
   the submitter, so a multi-domain run must tally exactly what the
   sequential run tallies. s444's 763 collapsed faults span 13 chunks —
   enough for real fan-out. *)
let counters_snapshot () =
  let c = Fault_sim.counters () in
  ( c.Fault_sim.full_runs,
    c.Fault_sim.event_runs,
    c.Fault_sim.events_fired,
    c.Fault_sim.gate_evals,
    c.Fault_sim.gates_skipped,
    c.Fault_sim.faults_dropped )

let test_counters_merge_across_jobs () =
  let c = Synth.generate_named "s444" in
  let faults = Fault_gen.collapsed c in
  let rng = Rng.create 99L in
  let stimuli = Array.init 4 (fun _ -> random_stimulus rng c) in
  let tally mode jobs =
    let sim = Fault_sim.create ~mode ~jobs c in
    Fault_sim.reset_counters ();
    let flags =
      Array.map (fun (pi, state) -> Fault_sim.detected_faults sim ~pi ~state faults) stimuli
    in
    (flags, counters_snapshot ())
  in
  List.iter
    (fun mode ->
      let flags1, ctr1 = tally mode 1 in
      List.iter
        (fun jobs ->
          let flagsj, ctrj = tally mode jobs in
          Alcotest.(check bool)
            (Printf.sprintf "caught flags identical at jobs=%d" jobs)
            true (flags1 = flagsj);
          Alcotest.(check bool)
            (Printf.sprintf "counters identical at jobs=%d" jobs)
            true (ctr1 = ctrj))
        [ 2; 4 ])
    [ Fault_sim.Event_driven; Fault_sim.Full ];
  Fault_sim.reset_counters ()

(* --- multi-vector screening -------------------------------------------- *)

let random_vectors rng c n = Array.init n (fun _ -> random_stimulus rng c)

(* 7. detected_matrix's contract: row [v] equals a detected_faults screen of
   vector [v], on both execution paths. *)
let qcheck_matrix_equals_per_vector =
  QCheck.Test.make ~name:"detected_matrix rows equal detected_faults" ~count:25
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let vectors = random_vectors rng c (1 + Rng.int rng 9) in
      List.for_all
        (fun mode ->
          let sim = Fault_sim.create ~mode c in
          let matrix = Fault_sim.detected_matrix sim ~vectors faults in
          Array.length matrix = Array.length vectors
          && Array.for_all2
               (fun row (pi, state) -> row = Fault_sim.detected_faults sim ~pi ~state faults)
               matrix vectors)
        [ Fault_sim.Event_driven; Fault_sim.Full ])

(* 8. The batch knob, like jobs, is a pure scheduling choice: every
   (jobs, batch) combination returns the byte-identical matrix. batch=3
   leaves a ragged final batch; batch=16 swallows the set whole. *)
let qcheck_batch_and_jobs_invariance =
  QCheck.Test.make ~name:"batch=1 equals batch=16 across jobs" ~count:15
    QCheck.(pair (int_range 0 24) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let rng = Rng.create (Int64.of_int seed) in
      let faults = random_faults rng c in
      let vectors = random_vectors rng c (2 + Rng.int rng 14) in
      List.for_all
        (fun mode ->
          let screen jobs batch =
            Fault_sim.detected_matrix (Fault_sim.create ~mode ~jobs ~batch c) ~vectors faults
          in
          let base = screen 1 1 in
          List.for_all
            (fun (jobs, batch) -> screen jobs batch = base)
            [ (1, 16); (4, 1); (4, 3); (2, 16) ])
        [ Fault_sim.Event_driven; Fault_sim.Full ])

let test_matrix_empty_vectors () =
  let c = tiny_circuit 3 in
  let faults = Fault_gen.collapsed c in
  let sim = Fault_sim.create c in
  Alcotest.(check int)
    "no vectors, no rows" 0
    (Array.length (Fault_sim.detected_matrix sim ~vectors:[||] faults))

(* 9. Work counters are batch- and jobs-invariant: per-vector work is fixed,
   shards merge by summation, and the batch axis only regroups it. *)
let test_counters_merge_across_batch () =
  let c = Synth.generate_named "s444" in
  let faults = Fault_gen.collapsed c in
  let rng = Rng.create 7L in
  let vectors = Array.init 11 (fun _ -> random_stimulus rng c) in
  List.iter
    (fun mode ->
      let tally jobs batch =
        let sim = Fault_sim.create ~mode ~jobs ~batch c in
        Fault_sim.reset_counters ();
        let matrix = Fault_sim.detected_matrix sim ~vectors faults in
        (matrix, counters_snapshot ())
      in
      let matrix1, ctr1 = tally 1 1 in
      List.iter
        (fun (jobs, batch) ->
          let matrixj, ctrj = tally jobs batch in
          Alcotest.(check bool)
            (Printf.sprintf "matrix identical at jobs=%d batch=%d" jobs batch)
            true (matrix1 = matrixj);
          Alcotest.(check bool)
            (Printf.sprintf "counters identical at jobs=%d batch=%d" jobs batch)
            true (ctr1 = ctrj))
        [ (1, 16); (2, 4); (4, 1); (4, 16) ])
    [ Fault_sim.Event_driven; Fault_sim.Full ];
  Fault_sim.reset_counters ()

(* --- cone index -------------------------------------------------------- *)

(* c = (a AND b); d = NOT c; flop f captures d; PO = c. *)
let cone_fixture () =
  let b = Circuit.Builder.create "cones" in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let c = Circuit.Builder.gate b ~name:"c" Gate.And [ a; bb ] in
  let d = Circuit.Builder.gate b ~name:"d" Gate.Not [ c ] in
  let q = Circuit.Builder.flop b ~name:"q" d in
  Circuit.Builder.mark_output b c;
  (Circuit.Builder.finish b, a, bb, c, d, q)

let test_cone_membership () =
  let circ, a, bb, c, d, q = cone_fixture () in
  Alcotest.(check bool) "a reaches c" true (Circuit.in_cone circ ~stem:a c);
  Alcotest.(check bool) "a reaches d" true (Circuit.in_cone circ ~stem:a d);
  Alcotest.(check bool) "a contains itself" true (Circuit.in_cone circ ~stem:a a);
  Alcotest.(check bool) "a does not reach b" false (Circuit.in_cone circ ~stem:a bb);
  (* Propagation stops at the flip-flop D pin: Q is sequential, not in the
     combinational cone. *)
  Alcotest.(check bool) "cone stops at flop" false (Circuit.in_cone circ ~stem:a q);
  Alcotest.(check bool) "d does not reach c" false (Circuit.in_cone circ ~stem:d c);
  Alcotest.(check int) "cone size of a" 3 (Circuit.cone_size circ a);
  Alcotest.(check int) "cone size of d" 1 (Circuit.cone_size circ d)

let test_cone_q_restarts () =
  (* The Q net is a source of the combinational core: its cone restarts. *)
  let circ, _, _, _, _, q = cone_fixture () in
  Alcotest.(check bool) "q contains itself" true (Circuit.in_cone circ ~stem:q q);
  Alcotest.(check int) "q cone is just q (no consumers)" 1 (Circuit.cone_size circ q)

(* Cone transitivity on random circuits: stem_b in cone(a) implies
   cone(b) subset of cone(a) — the property chunk grouping relies on. *)
let qcheck_cone_transitive =
  QCheck.Test.make ~name:"cone membership is transitive" ~count:20
    QCheck.(pair (int_range 0 20) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let n = Circuit.num_nets c in
      let rng = Rng.create (Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 50 do
        let a = Rng.int rng n and b = Rng.int rng n in
        if Circuit.in_cone c ~stem:a b then
          for x = 0 to n - 1 do
            if Circuit.in_cone c ~stem:b x && not (Circuit.in_cone c ~stem:a x) then ok := false
          done
      done;
      !ok)

let () =
  Alcotest.run "event-sim"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest qcheck_reference_equivalence;
          QCheck_alcotest.to_alcotest qcheck_run_batch_equivalence;
          QCheck_alcotest.to_alcotest qcheck_run_per_state_equivalence;
          QCheck_alcotest.to_alcotest qcheck_detected_equivalence;
          QCheck_alcotest.to_alcotest qcheck_reused_context_stays_exact;
        ] );
      ( "parallel",
        [
          QCheck_alcotest.to_alcotest qcheck_jobs_equivalence;
          Alcotest.test_case "counters merge identically across jobs" `Quick
            test_counters_merge_across_jobs;
        ] );
      ( "matrix",
        [
          QCheck_alcotest.to_alcotest qcheck_matrix_equals_per_vector;
          QCheck_alcotest.to_alcotest qcheck_batch_and_jobs_invariance;
          Alcotest.test_case "empty vector set" `Quick test_matrix_empty_vectors;
          Alcotest.test_case "counters merge identically across batch" `Quick
            test_counters_merge_across_batch;
        ] );
      ( "cones",
        [
          Alcotest.test_case "membership and sizes" `Quick test_cone_membership;
          Alcotest.test_case "flop Q restarts the cone" `Quick test_cone_q_restarts;
          QCheck_alcotest.to_alcotest qcheck_cone_transitive;
        ] );
    ]
