(* The serve daemon: wire protocol (framing + request parsing) and the full
   server loop — submit/dedupe/status/metrics/shutdown over a real Unix
   socket, plus checkpoint recovery at startup. The server runs in-process
   on a thread; the engine itself fans out across domains as usual. *)

module Protocol = Tvs_serve.Protocol
module Server = Tvs_serve.Server
module Json = Tvs_obs.Json
module Cli = Tvs_harness.Cli
module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Circuit = Tvs_netlist.Circuit
module Cache = Tvs_store.Cache
module Checkpoint = Tvs_store.Checkpoint
module Digest = Tvs_store.Digest
module Policy = Tvs_core.Policy
module Xor_scheme = Tvs_scan.Xor_scheme

(* --- framing ---------------------------------------------------------- *)

(* A pipe stands in for the socket: write_frame into one end, read_frame
   from the other. Frames under test are far below the pipe buffer, so the
   single-threaded round-trip cannot block. *)
let over_pipe writer =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w and ic = Unix.in_channel_of_descr r in
  writer oc;
  close_out oc;
  let collect = ref [] in
  let rec drain () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some f ->
        collect := f :: !collect;
        drain ()
  in
  drain ();
  close_in ic;
  List.rev !collect

let test_frame_roundtrip () =
  let docs =
    [
      Json.Obj [ ("verb", Json.Str "ping") ];
      Json.Obj [ ("text", Json.Str "line one\nline two\n") ];
      Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Bool false; Json.Null ];
    ]
  in
  let got = over_pipe (fun oc -> List.iter (Protocol.write_frame oc) docs) in
  Alcotest.(check int) "frame count" (List.length docs) (List.length got);
  List.iter2
    (fun want got ->
      match got with
      | Ok j -> Alcotest.(check string) "round-trips" (Json.to_string want) (Json.to_string j)
      | Error m -> Alcotest.failf "frame error: %s" m)
    docs got

let test_frame_damage () =
  (* Only the first read matters: past a framing error the stream is dead
     by contract, so the helper does not drain. *)
  let feed raw =
    let r, w = Unix.pipe () in
    let oc = Unix.out_channel_of_descr w and ic = Unix.in_channel_of_descr r in
    output_string oc raw;
    close_out oc;
    let res = Protocol.read_frame ic in
    close_in ic;
    match res with
    | Some v -> v
    | None -> Alcotest.fail "expected a frame result, got end-of-stream"
  in
  (match feed "nonsense\n{}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad length accepted");
  (match feed "5\n{}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload accepted");
  (match feed "2\n{}X" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing terminator accepted");
  (match feed "7\nnot-js\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad JSON accepted");
  match feed (Printf.sprintf "%d\n{}\n" (Protocol.max_frame + 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

(* --- request parsing -------------------------------------------------- *)

let parse_request s =
  match Json.parse s with
  | Ok j -> Protocol.request_of_json j
  | Error m -> Alcotest.failf "test JSON does not parse: %s" m

let test_request_verbs () =
  (match parse_request {|{"verb":"ping"}|} with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match parse_request {|{"verb":"status"}|} with
  | Ok Protocol.Status -> ()
  | _ -> Alcotest.fail "status");
  (match parse_request {|{"verb":"metrics"}|} with
  | Ok Protocol.Metrics -> ()
  | _ -> Alcotest.fail "metrics");
  (match parse_request {|{"verb":"shutdown"}|} with
  | Ok Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown");
  (match parse_request {|{"verb":"frobnicate"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb accepted");
  match parse_request {|{"spec":"fig1"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing verb accepted"

let test_submit_defaults () =
  match parse_request {|{"verb":"submit","spec":"fig1"}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "spec source" true (job.Protocol.source = Protocol.Spec "fig1");
      Alcotest.(check (float 0.0)) "scale default" 1.0 job.Protocol.scale;
      Alcotest.(check bool) "scheme default" true (job.Protocol.scheme = Xor_scheme.Nxor);
      Alcotest.(check bool) "selection default" true
        (job.Protocol.selection = Policy.Most_faults 5);
      Alcotest.(check bool) "shift default" true (job.Protocol.shift = None);
      Alcotest.(check string) "label default" "cli" job.Protocol.label
  | _ -> Alcotest.fail "minimal submit rejected"

let test_submit_full_roundtrip () =
  let job =
    {
      Protocol.source = Protocol.Spec "s27";
      kind = Protocol.Stitch;
      format = None;
      scale = 0.5;
      scheme = Xor_scheme.Vxor;
      selection = Policy.Hardness_order;
      shift = Some 3;
      label = "soak";
    }
  in
  match Protocol.request_of_json (Protocol.json_of_job job) with
  | Ok (Protocol.Submit job') ->
      Alcotest.(check bool) "job round-trips through its own JSON" true (job = job')
  | _ -> Alcotest.fail "round-trip rejected"

let test_tpi_verb () =
  (* Minimal tpi request: defaults mirror Tvs_tpi.Tpi.default_options. *)
  (match parse_request {|{"verb":"tpi","spec":"s27"}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "tpi kind with defaults" true
        (job.Protocol.kind = Protocol.Tpi Protocol.default_tpi_params)
  | _ -> Alcotest.fail "minimal tpi rejected");
  (* Explicit params parse into the kind. *)
  (match parse_request {|{"verb":"tpi","spec":"s27","points":3,"budget":5,"controls":true}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "tpi params" true
        (job.Protocol.kind
        = Protocol.Tpi
            { Protocol.default_tpi_params with Protocol.points = 3; budget = 5; controls = true })
  | _ -> Alcotest.fail "tpi with params rejected");
  (* Non-positive counts are typed protocol errors, never defaults. *)
  (match parse_request {|{"verb":"tpi","spec":"s27","points":0}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "points=0 accepted");
  (* A tpi job round-trips through its own JSON. *)
  let job =
    {
      (Protocol.default_job
         ~kind:(Protocol.Tpi { Protocol.points = 3; budget = 6; po_taps = true; controls = false })
         (Protocol.Spec "s444"))
      with
      Protocol.shift = Some 4;
    }
  in
  match Protocol.request_of_json (Protocol.json_of_job job) with
  | Ok (Protocol.Submit job') ->
      Alcotest.(check bool) "tpi job round-trips through its own JSON" true (job = job')
  | _ -> Alcotest.fail "tpi round-trip rejected"

let test_equiv_verb () =
  (* Minimal equiv request: scan-form target, Cec defaults. *)
  (match parse_request {|{"verb":"equiv","spec":"s27","scan":true}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "equiv kind with defaults" true
        (job.Protocol.kind = Protocol.Equiv Protocol.default_equiv_params)
  | _ -> Alcotest.fail "minimal equiv rejected");
  (* Explicit right circuit, budget, vectors and ties. *)
  (match
     parse_request
       {|{"verb":"equiv","spec":"s27","right_spec":"s27","budget":5000,"vectors":4,"scan_map":"scan_en=0,test_mode=1"}|}
   with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "equiv params" true
        (job.Protocol.kind
        = Protocol.Equiv
            {
              Protocol.target = Protocol.Netlist (Protocol.Spec "s27");
              budget = 5000;
              vectors = 4;
              ties = [ ("scan_en", false); ("test_mode", true) ];
            })
  | _ -> Alcotest.fail "equiv with params rejected");
  (* Exactly one target: both, neither and non-positive budgets are typed
     protocol errors. *)
  List.iter
    (fun (what, raw) ->
      match parse_request raw with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: malformed equiv accepted" what)
    [
      ("scan and right", {|{"verb":"equiv","spec":"s27","scan":true,"right_spec":"s27"}|});
      ("no target", {|{"verb":"equiv","spec":"s27"}|});
      ("two rights", {|{"verb":"equiv","spec":"s27","right_spec":"a","right_bench":"b"}|});
      ("budget=0", {|{"verb":"equiv","spec":"s27","scan":true,"budget":0}|});
      ("bad scan_map", {|{"verb":"equiv","spec":"s27","scan":true,"scan_map":"scan_en=2"}|});
    ];
  (* Equiv jobs round-trip through their own JSON, for every target shape. *)
  List.iter
    (fun target ->
      let job =
        Protocol.default_job
          ~kind:
            (Protocol.Equiv
               { Protocol.target; budget = 777; vectors = 3; ties = [ ("scan_en", false) ] })
          (Protocol.Spec "s444")
      in
      match Protocol.request_of_json (Protocol.json_of_job job) with
      | Ok (Protocol.Submit job') ->
          Alcotest.(check bool) "equiv job round-trips through its own JSON" true (job = job')
      | _ -> Alcotest.fail "equiv round-trip rejected")
    [
      Protocol.Scan_form;
      Protocol.Netlist (Protocol.Spec "s27");
      Protocol.Netlist (Protocol.Bench "INPUT(a)\n");
    ]

let test_submit_format () =
  (* Explicit formats parse; "auto" is the spelled-out default. *)
  (match parse_request {|{"verb":"submit","spec":"fig1","format":"verilog"}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "verilog format" true
        (job.Protocol.format = Some Tvs_verilog.Loader.Verilog)
  | _ -> Alcotest.fail "explicit verilog format rejected");
  (match parse_request {|{"verb":"submit","spec":"fig1","format":"bench"}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "bench format" true
        (job.Protocol.format = Some Tvs_verilog.Loader.Bench)
  | _ -> Alcotest.fail "explicit bench format rejected");
  (match parse_request {|{"verb":"submit","spec":"fig1","format":"auto"}|} with
  | Ok (Protocol.Submit job) ->
      Alcotest.(check bool) "auto is the default" true (job.Protocol.format = None)
  | _ -> Alcotest.fail "auto format rejected");
  (* Unknown formats are a typed protocol error naming the field. *)
  (match parse_request {|{"verb":"submit","spec":"fig1","format":"vhdl"}|} with
  | Error m ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the bad value" true (contains m "vhdl")
  | Ok _ -> Alcotest.fail "unknown format accepted");
  (* A job with an explicit format round-trips through its own JSON. *)
  let job =
    {
      (Protocol.default_job (Protocol.Bench "module m (a, y);\n")) with
      Protocol.format = Some Tvs_verilog.Loader.Verilog;
    }
  in
  match Protocol.request_of_json (Protocol.json_of_job job) with
  | Ok (Protocol.Submit job') ->
      Alcotest.(check bool) "format survives the round-trip" true (job = job')
  | _ -> Alcotest.fail "format round-trip rejected"

let test_submit_rejects_malformed () =
  let bad =
    [
      ("no source", {|{"verb":"submit"}|});
      ("both sources", {|{"verb":"submit","spec":"fig1","bench":"INPUT(a)"}|});
      ("scale type", {|{"verb":"submit","spec":"fig1","scale":"big"}|});
      ("scale range", {|{"verb":"submit","spec":"fig1","scale":2.0}|});
      ("scheme vocabulary", {|{"verb":"submit","spec":"fig1","scheme":"xor9"}|});
      ("selection vocabulary", {|{"verb":"submit","spec":"fig1","selection":"best"}|});
      ("shift range", {|{"verb":"submit","spec":"fig1","shift":0}|});
      ("shift type", {|{"verb":"submit","spec":"fig1","shift":"wide"}|});
      ("label type", {|{"verb":"submit","spec":"fig1","label":7}|});
    ]
  in
  List.iter
    (fun (what, raw) ->
      match parse_request raw with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: malformed submit accepted" what)
    bad

(* --- the server ------------------------------------------------------- *)

let fresh_dir () =
  let path = Filename.temp_file "tvs-serve" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

(* Start a server on a Unix socket in a fresh temp dir, run [f] against it,
   then shut it down through the protocol and check the run result. *)
let with_server ?state_dir f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "sock" in
  let ready = Atomic.make false in
  let outcome = ref (Error "server never returned") in
  let th =
    Thread.create
      (fun () ->
        outcome :=
          Server.run ?state_dir ~checkpoint_every:1 ~checkpoint_threshold:0
            ~on_ready:(fun () -> Atomic.set ready true)
            (Server.Unix_socket sock))
      ()
  in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  Fun.protect
    ~finally:(fun () ->
      (* Idempotent: a test that already sent shutdown just gets a refused
         connection here. *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try
            Unix.connect fd (Unix.ADDR_UNIX sock);
            let oc = Unix.out_channel_of_descr fd in
            Protocol.write_frame oc (Protocol.json_of_request Protocol.Shutdown);
            close_out_noerr oc
          with Unix.Unix_error _ -> Unix.close fd)
       with Unix.Unix_error _ -> ());
      Thread.join th;
      match !outcome with
      | Ok () -> ()
      | Error m -> Alcotest.failf "server run failed: %s" m)
    (fun () -> f sock)

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let next_event ic =
  match Protocol.read_frame ic with
  | Some (Ok j) -> j
  | Some (Error m) -> Alcotest.failf "frame error from server: %s" m
  | None -> Alcotest.fail "server closed the stream mid-conversation"

let event_name j =
  match Json.member "event" j with Some (Json.Str s) -> s | _ -> "<unnamed>"

let str_field k j = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
let bool_field k j = match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

(* Submit and read this job's lifecycle through to done/error. *)
let submit_and_wait ic oc job =
  Protocol.write_frame oc (Protocol.json_of_job job);
  let rec wait () =
    let j = next_event ic in
    match event_name j with
    | "done" -> Ok j
    | "error" -> Error (Option.value ~default:"?" (str_field "message" j))
    | "queued" | "started" | "checkpoint" -> wait ()
    | other -> Alcotest.failf "unexpected event %S" other
  in
  wait ()

(* What `tvs stitch fig1` prints — the byte-exact reference. *)
let expected_fig1 =
  lazy
    (let c = Result.get_ok (Cli.load_circuit "fig1") in
     let prep = Prep.of_circuit c in
     let r = Experiments.run_flow ~label:"cli" prep in
     Experiments.render_summary ~circuit:(Circuit.name c) ~scheme:Xor_scheme.Nxor
       ~selection:(Policy.Most_faults 5) r)

let test_server_end_to_end () =
  let cache_dir = fresh_dir () in
  Experiments.set_cache (Some (Result.get_ok (Cache.open_dir cache_dir)));
  Fun.protect
    ~finally:(fun () -> Experiments.set_cache None)
    (fun () ->
      with_server (fun sock ->
          let ic, oc = connect sock in
          (* ping *)
          Protocol.write_frame oc (Protocol.json_of_request Protocol.Ping);
          Alcotest.(check string) "pong" "pong" (event_name (next_event ic));
          (* first submission computes, byte-identical to the one-shot CLI *)
          (match submit_and_wait ic oc (Protocol.default_job (Protocol.Spec "fig1")) with
          | Error m -> Alcotest.failf "job failed: %s" m
          | Ok j ->
              Alcotest.(check string) "output matches tvs stitch" (Lazy.force expected_fig1)
                (Option.value ~default:"" (str_field "output" j)));
          (* identical job dedupes through the cache *)
          (match submit_and_wait ic oc (Protocol.default_job (Protocol.Spec "fig1")) with
          | Error m -> Alcotest.failf "repeat failed: %s" m
          | Ok j ->
              Alcotest.(check (option bool)) "repeat flagged cached" (Some true)
                (bool_field "cached" j);
              Alcotest.(check string) "repeat output still identical"
                (Lazy.force expected_fig1)
                (Option.value ~default:"" (str_field "output" j)));
          (* a bad spec fails the job, not the connection or the server *)
          (match
             submit_and_wait ic oc (Protocol.default_job (Protocol.Spec "no-such-circuit"))
           with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "nonexistent spec served");
          (* a submit-level parse error keeps the connection alive too *)
          Protocol.write_frame oc
            (Json.Obj [ ("verb", Json.Str "submit"); ("spec", Json.Int 3) ]);
          Alcotest.(check string) "parse error reported" "error"
            (event_name (next_event ic));
          (* status and metrics still answer on the same connection *)
          Protocol.write_frame oc (Protocol.json_of_request Protocol.Status);
          let s = next_event ic in
          Alcotest.(check string) "status event" "status" (event_name s);
          Alcotest.(check bool) "status reports queue depth" true
            (match Json.member "queue" s with Some (Json.Int _) -> true | _ -> false);
          Protocol.write_frame oc (Protocol.json_of_request Protocol.Metrics);
          let m = next_event ic in
          Alcotest.(check string) "metrics event" "metrics" (event_name m);
          Alcotest.(check bool) "metrics carries the registry" true
            (match Json.member "metrics" m with Some (Json.Arr (_ :: _)) -> true | _ -> false);
          close_out_noerr oc))

let test_server_inline_bench () =
  (* A self-contained sequential netlist: inline jobs must work without any
     file on the server side. *)
  let text = "INPUT(a)\nOUTPUT(y)\nf = DFF(g)\ng = NAND(a, f)\ny = NOT(f)\n" in
  let expected =
    let c = Result.get_ok (Cli.inline_circuit text) in
    let prep = Prep.of_circuit c in
    let r = Experiments.run_flow ~label:"cli" prep in
    Experiments.render_summary ~circuit:(Circuit.name c) ~scheme:Xor_scheme.Nxor
      ~selection:(Policy.Most_faults 5) r
  in
  with_server (fun sock ->
      let ic, oc = connect sock in
      (match submit_and_wait ic oc (Protocol.default_job (Protocol.Bench text)) with
      | Error m -> Alcotest.failf "inline job failed: %s" m
      | Ok j ->
          Alcotest.(check string) "inline output matches in-process run" expected
            (Option.value ~default:"" (str_field "output" j)));
      (* Malformed inline text is a job error with a line number. *)
      (match submit_and_wait ic oc (Protocol.default_job (Protocol.Bench "y = NOT(\n")) with
      | Error m -> Alcotest.(check bool) "names the line" true (String.length m > 0)
      | Ok _ -> Alcotest.fail "malformed netlist served");
      close_out_noerr oc)

let test_server_inline_verilog () =
  (* The same sequential netlist as the inline-bench test, written in
     structural Verilog and auto-detected from the content — no format
     field, no file. *)
  let text =
    "module inline_v (a, clk, y);\n  input a, clk;\n  output y;\n  wire f, g;\n\
     \  tvs_dff ff (.q(f), .d(g), .clk(clk));\n  nand u1 (g, a, f);\n\
     \  not u2 (y, f);\nendmodule\n"
  in
  let expected =
    let c = Result.get_ok (Cli.inline_circuit text) in
    let prep = Prep.of_circuit c in
    let r = Experiments.run_flow ~label:"cli" prep in
    Experiments.render_summary ~circuit:(Circuit.name c) ~scheme:Xor_scheme.Nxor
      ~selection:(Policy.Most_faults 5) r
  in
  with_server (fun sock ->
      let ic, oc = connect sock in
      (match submit_and_wait ic oc (Protocol.default_job (Protocol.Bench text)) with
      | Error m -> Alcotest.failf "inline verilog job failed: %s" m
      | Ok j ->
          Alcotest.(check string) "verilog inline output matches in-process run" expected
            (Option.value ~default:"" (str_field "output" j)));
      (* Forcing the wrong format turns the same text into a job error. *)
      (match
         submit_and_wait ic oc
           {
             (Protocol.default_job (Protocol.Bench text)) with
             Protocol.format = Some Tvs_verilog.Loader.Bench;
           }
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "verilog text served as .bench");
      close_out_noerr oc)

(* Crash recovery: a checkpoint left behind by a killed server is replayed
   at startup — digest-verified — and its result lands in the cache, so the
   client's retry is a dedupe hit with the exact one-shot bytes. *)
let test_server_recovery () =
  let state_dir = fresh_dir () and cache_dir = fresh_dir () in
  let c = Result.get_ok (Cli.load_circuit "fig1") in
  let prep = Prep.of_circuit c in
  (* Capture a genuine first-cycle snapshot the way a dying server would
     have left it. *)
  let snap = ref None in
  ignore
    (Experiments.run_flow
       ~checkpoint:(1, fun s -> if !snap = None then snap := Some s)
       ~label:"cli" prep);
  let snapshot =
    match !snap with Some s -> s | None -> Alcotest.fail "no snapshot captured"
  in
  let config = Experiments.config_for prep in
  Checkpoint.save
    (Filename.concat state_dir "job-interrupted.ckpt")
    {
      Checkpoint.spec = "fig1";
      scale = 1.0;
      scheme = Xor_scheme.Nxor;
      selection = Policy.Most_faults 5;
      shift = None;
      label = "cli";
      circuit_digest = Digest.circuit c;
      config_digest = Digest.config ~config ~label:"cli";
      snapshot;
    };
  (* And one damaged file, which startup must drop instead of crash on. *)
  let oc = open_out_bin (Filename.concat state_dir "job-damaged.ckpt") in
  output_string oc "not a checkpoint";
  close_out oc;
  Experiments.set_cache (Some (Result.get_ok (Cache.open_dir cache_dir)));
  Fun.protect
    ~finally:(fun () -> Experiments.set_cache None)
    (fun () ->
      with_server ~state_dir (fun sock ->
          let ic, oc = connect sock in
          (* The recovery job was queued before on_ready; once it finishes,
             the same submission must be served from the cache. *)
          let rec await_idle () =
            Protocol.write_frame oc (Protocol.json_of_request Protocol.Status);
            let s = next_event ic in
            let queue = match Json.member "queue" s with Some (Json.Int n) -> n | _ -> -1 in
            if queue = 0 && bool_field "running" s = Some false then ()
            else begin
              Thread.yield ();
              await_idle ()
            end
          in
          await_idle ();
          Alcotest.(check bool) "resumed checkpoint removed" false
            (Sys.file_exists (Filename.concat state_dir "job-interrupted.ckpt"));
          Alcotest.(check bool) "damaged checkpoint dropped" false
            (Sys.file_exists (Filename.concat state_dir "job-damaged.ckpt"));
          (match submit_and_wait ic oc (Protocol.default_job (Protocol.Spec "fig1")) with
          | Error m -> Alcotest.failf "post-recovery job failed: %s" m
          | Ok j ->
              Alcotest.(check (option bool)) "served from the recovered result" (Some true)
                (bool_field "cached" j);
              Alcotest.(check string) "recovered output byte-identical"
                (Lazy.force expected_fig1)
                (Option.value ~default:"" (str_field "output" j)));
          close_out_noerr oc))

(* A tpi job end-to-end: the done event carries the study document and the
   exact bytes `tvs tpi` would print; an identical resubmission dedupes
   through the TPIS cache kind. *)
let test_server_tpi () =
  let cache_dir = fresh_dir () in
  Experiments.set_cache (Some (Result.get_ok (Cache.open_dir cache_dir)));
  Fun.protect
    ~finally:(fun () -> Experiments.set_cache None)
    (fun () ->
      with_server (fun sock ->
          let ic, oc = connect sock in
          let job = Protocol.default_job ~kind:(Protocol.Tpi Protocol.default_tpi_params)
              (Protocol.Spec "s27")
          in
          let first =
            match submit_and_wait ic oc job with
            | Error m -> Alcotest.failf "tpi job failed: %s" m
            | Ok j -> j
          in
          (* The study is now cached; rendering it locally replays the same
             bytes the one-shot CLI prints. *)
          let module Tpi = Tvs_tpi.Tpi in
          let expected =
            Tpi.to_ascii (Tpi.run (Result.get_ok (Cli.load_circuit "s27")))
          in
          Alcotest.(check string) "output matches tvs tpi" expected
            (Option.value ~default:"" (str_field "output" first));
          Alcotest.(check bool) "done event carries the study document" true
            (Json.member "tpi" first <> None);
          (match submit_and_wait ic oc job with
          | Error m -> Alcotest.failf "tpi repeat failed: %s" m
          | Ok j ->
              Alcotest.(check (option bool)) "repeat flagged cached" (Some true)
                (bool_field "cached" j);
              Alcotest.(check string) "repeat output still identical" expected
                (Option.value ~default:"" (str_field "output" j)));
          close_out_noerr oc))

(* An equiv job end-to-end: the done event carries the verdict, the check
   document and the exact bytes `tvs equiv --scan` would print; an identical
   resubmission dedupes through the CEQV cache kind. *)
let test_server_equiv () =
  let module Cec = Tvs_cec.Cec in
  let cache_dir = fresh_dir () in
  Experiments.set_cache (Some (Result.get_ok (Cache.open_dir cache_dir)));
  Fun.protect
    ~finally:(fun () -> Experiments.set_cache None)
    (fun () ->
      with_server (fun sock ->
          let ic, oc = connect sock in
          let job =
            Protocol.default_job
              ~kind:(Protocol.Equiv Protocol.default_equiv_params)
              (Protocol.Spec "s27")
          in
          let first =
            match submit_and_wait ic oc job with
            | Error m -> Alcotest.failf "equiv job failed: %s" m
            | Ok j -> j
          in
          let expected =
            let left = Result.get_ok (Cli.load_circuit "s27") in
            let right = (Tvs_netlist.Scan_insert.insert left).Tvs_netlist.Scan_insert.circuit in
            Cec.to_ascii (Cec.check left right)
          in
          Alcotest.(check (option string)) "scan form proven equivalent" (Some "equivalent")
            (str_field "verdict" first);
          Alcotest.(check string) "output matches tvs equiv --scan" expected
            (Option.value ~default:"" (str_field "output" first));
          Alcotest.(check bool) "done event carries the check document" true
            (Json.member "equiv" first <> None);
          (match submit_and_wait ic oc job with
          | Error m -> Alcotest.failf "equiv repeat failed: %s" m
          | Ok j ->
              Alcotest.(check (option bool)) "repeat flagged cached" (Some true)
                (bool_field "cached" j);
              Alcotest.(check string) "repeat output still identical" expected
                (Option.value ~default:"" (str_field "output" j)));
          (* An interface mismatch is a job error, not a dead server. *)
          (match
             submit_and_wait ic oc
               (Protocol.default_job
                  ~kind:
                    (Protocol.Equiv
                       {
                         Protocol.default_equiv_params with
                         Protocol.target = Protocol.Netlist (Protocol.Spec "fig1");
                       })
                  (Protocol.Spec "s27"))
           with
          | Error m -> Alcotest.(check bool) "mismatch reported" true (String.length m > 0)
          | Ok _ -> Alcotest.fail "mismatched interfaces served");
          close_out_noerr oc))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame damage detected" `Quick test_frame_damage;
          Alcotest.test_case "request verbs" `Quick test_request_verbs;
          Alcotest.test_case "submit defaults" `Quick test_submit_defaults;
          Alcotest.test_case "submit full round-trip" `Quick test_submit_full_roundtrip;
          Alcotest.test_case "tpi verb" `Quick test_tpi_verb;
          Alcotest.test_case "equiv verb" `Quick test_equiv_verb;
          Alcotest.test_case "submit format field" `Quick test_submit_format;
          Alcotest.test_case "malformed submits rejected" `Quick test_submit_rejects_malformed;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over a Unix socket" `Quick test_server_end_to_end;
          Alcotest.test_case "inline netlist jobs" `Quick test_server_inline_bench;
          Alcotest.test_case "inline verilog jobs" `Quick test_server_inline_verilog;
          Alcotest.test_case "checkpoint recovery at startup" `Quick test_server_recovery;
          Alcotest.test_case "tpi jobs" `Quick test_server_tpi;
          Alcotest.test_case "equiv jobs" `Quick test_server_equiv;
        ] );
    ]
