(* The observability library: metric registration and shard merge, the
   jobs-invariance of the stable snapshot, histogram bucketing at the
   boundaries, trace JSON shape and nesting, and the report schema
   round-trip. *)

module Metrics = Tvs_obs.Metrics
module Trace = Tvs_obs.Trace
module Report = Tvs_obs.Report
module Json = Tvs_obs.Json
module Pool = Tvs_util.Pool
module Fault_sim = Tvs_fault.Fault_sim
module Fault_gen = Tvs_fault.Fault_gen
module Circuit = Tvs_netlist.Circuit
module Synth = Tvs_circuits.Synth
module Rng = Tvs_util.Rng

(* --- metrics ----------------------------------------------------------- *)

let test_registration () =
  let a = Metrics.counter "obs-test.reg" in
  let b = Metrics.counter "obs-test.reg" in
  Metrics.add a 3;
  Metrics.incr b;
  Alcotest.(check int) "re-registration returns the same handle" 4 (Metrics.counter_value a);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Metrics: \"obs-test.reg\" is already registered as a counter (wanted a histogram)")
    (fun () -> ignore (Metrics.histogram "obs-test.reg"))

let test_gauge_max () =
  let g = Metrics.gauge "obs-test.gauge" in
  Metrics.observe_max g 7;
  Metrics.observe_max g 3;
  Alcotest.(check int) "gauge keeps the watermark" 7 (Metrics.gauge_value g)

(* Shards written by distinct pool domains merge to the arithmetic total. *)
let test_multi_domain_merge () =
  let c = Metrics.counter "obs-test.merge" in
  let pool = Pool.shared ~jobs:4 in
  let chunks = 64 in
  let out =
    Pool.parallel_map_chunks pool ~n:chunks (fun ~slot:_ i ->
        Metrics.add c (i + 1);
        i + 1)
  in
  let expect = Array.fold_left ( + ) 0 out in
  Alcotest.(check int) "sum over domains" expect (Metrics.counter_value c);
  Alcotest.(check int) "expected arithmetic total" (chunks * (chunks + 1) / 2) expect

let test_histogram_boundaries () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative -> bucket 0" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "1 -> bucket 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (Metrics.bucket_of 4);
  Alcotest.(check int) "max_int -> last bucket" (Metrics.num_buckets - 1)
    (Metrics.bucket_of max_int);
  let h = Metrics.histogram "obs-test.hist" in
  Metrics.observe h 0;
  Metrics.observe h 1;
  Metrics.observe h max_int;
  match List.assoc "obs-test.hist" (Metrics.snapshot ()) with
  | Metrics.Histogram_v { count; sum; buckets } ->
      Alcotest.(check int) "count" 3 count;
      (* 0 + 1 + max_int wraps to min_int: still deterministic. *)
      Alcotest.(check int) "sum wraps deterministically" (1 + max_int) sum;
      Alcotest.(check int) "bucket 0" 1 buckets.(0);
      Alcotest.(check int) "bucket 1" 1 buckets.(1);
      Alcotest.(check int) "last bucket" 1 buckets.(Metrics.num_buckets - 1)
  | Metrics.Counter_v _ | Metrics.Gauge_v _ -> Alcotest.fail "wrong kind in snapshot"

(* The headline determinism property: the stable snapshot after a pool
   fault-simulation workload is structurally identical at jobs=1 and jobs=4.
   s444's 763 collapsed faults span 13 chunks, enough for real fan-out. *)
let qcheck_snapshot_jobs_invariant =
  QCheck.Test.make ~name:"stable snapshot identical at jobs=1 and jobs=4" ~count:8
    QCheck.small_int (fun seed ->
      let c = Synth.generate_named "s444" in
      let faults = Fault_gen.collapsed c in
      let rng = Rng.create (Int64.of_int (seed + 7)) in
      let stimuli =
        Array.init 2 (fun _ ->
            ( Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng),
              Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) ))
      in
      let snap jobs =
        Metrics.reset ();
        let sim = Fault_sim.create ~jobs c in
        Array.iter
          (fun (pi, state) -> ignore (Fault_sim.detected_faults sim ~pi ~state faults))
          stimuli;
        Metrics.snapshot ()
      in
      let s1 = snap 1 and s4 = snap 4 in
      Metrics.reset ();
      s1 = s4)

(* --- trace ------------------------------------------------------------- *)

let test_trace_nesting () =
  Trace.reset ();
  Trace.start ();
  let v =
    Trace.with_span "outer" ~args:[ ("k", "v") ] (fun () ->
        let a = Trace.with_span "inner1" (fun () -> 1) in
        let b = Trace.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Trace.stop ();
  Alcotest.(check int) "body result passed through" 3 v;
  let spans = Trace.spans () in
  Alcotest.(check int) "three spans recorded" 3 (List.length spans);
  let outer = List.find (fun s -> s.Trace.name = "outer") spans in
  let inners = List.filter (fun s -> s.Trace.depth = 1) spans in
  Alcotest.(check int) "outer at depth 0" 0 outer.Trace.depth;
  Alcotest.(check int) "two children at depth 1" 2 (List.length inners);
  Alcotest.(check bool) "outer args recorded" true (outer.Trace.args = [ ("k", "v") ]);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s contained in outer" s.Trace.name)
        true
        (s.Trace.ts >= outer.Trace.ts
        && s.Trace.ts +. s.Trace.dur <= outer.Trace.ts +. outer.Trace.dur))
    inners;
  (* After stop, with_span is free and records nothing. *)
  ignore (Trace.with_span "after" (fun () -> ()));
  Alcotest.(check int) "no span recorded when disabled" 3 (List.length (Trace.spans ()));
  Trace.reset ()

let test_trace_export_json () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span "parent" (fun () -> Trace.with_span "child" (fun () -> ()));
  Trace.stop ();
  let doc = Trace.export_json () in
  Trace.reset ();
  match Json.parse doc with
  | Error msg -> Alcotest.fail ("trace JSON does not parse: " ^ msg)
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.Arr events) ->
          Alcotest.(check int) "one event per span" 2 (List.length events);
          List.iter
            (fun ev ->
              Alcotest.(check bool)
                "complete event" true
                (Json.member "ph" ev = Some (Json.Str "X"));
              match (Json.member "ts" ev, Json.member "dur" ev) with
              | Some (Json.Float _ | Json.Int _), Some (Json.Float _ | Json.Int _) -> ()
              | _ -> Alcotest.fail "event missing ts/dur")
            events
      | Some _ | None -> Alcotest.fail "no traceEvents array")

(* --- report ------------------------------------------------------------ *)

let sample_report () =
  Metrics.reset ();
  let c = Metrics.counter "obs-test.report.counter" in
  let h = Metrics.histogram "obs-test.report.hist" in
  let g = Metrics.gauge "obs-test.report.gauge" in
  Metrics.add c 41;
  Metrics.observe h 9;
  Metrics.observe_max g 5;
  Report.make ~scale:0.5 ~git_rev:"abc1234" ~jobs:4
    ~runs:
      [
        {
          Report.artifact = "table5";
          circuit = Some "s444";
          wall_ns = 1.5e9;
          benchmarks = [ { Report.name = "table5/parallel-faultsim"; ns_per_run = 123456.0 } ];
        };
      ]
    ~metrics:(Metrics.snapshot ()) ()

let test_report_roundtrip () =
  let r = sample_report () in
  let doc = Report.to_json r in
  (match Report.of_json doc with
  | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
  | Ok r' ->
      Alcotest.(check int) "version" Report.schema_version r'.Report.version;
      Alcotest.(check int) "jobs" 4 r'.Report.jobs;
      Alcotest.(check bool) "git rev" true (r'.Report.git_rev = Some "abc1234");
      Alcotest.(check bool) "runs survive" true (r'.Report.runs = r.Report.runs);
      Alcotest.(check bool) "metrics survive" true (r'.Report.metrics = r.Report.metrics);
      Alcotest.(check string) "re-serialization is stable" doc (Report.to_json r'));
  Alcotest.(check bool) "validator accepts" true (Report.validate doc = Ok ());
  Metrics.reset ()

let test_report_rejects () =
  let reject what doc =
    match Report.validate doc with
    | Ok () -> Alcotest.fail (what ^ ": accepted invalid report")
    | Error _ -> ()
  in
  reject "garbage" "not json at all";
  reject "wrong toplevel" "[1,2,3]";
  reject "missing fields" "{}";
  let good = Report.to_json (sample_report ()) in
  (* A future schema version must be rejected, not silently misread. *)
  let bumped =
    let sub = Printf.sprintf "\"schema_version\":%d" Report.schema_version in
    let len = String.length sub in
    let rec find i =
      if i + len > String.length good then Alcotest.fail "schema_version not in output"
      else if String.sub good i len = sub then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub good 0 i ^ "\"schema_version\":99"
    ^ String.sub good (i + len) (String.length good - i - len)
  in
  reject "wrong schema version" bumped;
  Metrics.reset ()

(* --- json -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("c", Json.Str "quo\"te\n\ttab");
        ("d", Json.Arr [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("e", Json.Obj [ ("nested", Json.Int (-7)) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.fail ("round trip failed: " ^ msg)
  | Ok parsed -> Alcotest.(check bool) "tree survives printing" true (parsed = doc)

let test_json_errors () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "tru" ]

let test_json_sort_keys () =
  let a = Json.Obj [ ("b", Json.Int 1); ("a", Json.Obj [ ("z", Json.Null); ("y", Json.Null) ]) ] in
  let b = Json.Obj [ ("a", Json.Obj [ ("y", Json.Null); ("z", Json.Null) ]); ("b", Json.Int 1) ] in
  Alcotest.(check bool) "canonical forms equal" true (Json.sort_keys a = Json.sort_keys b);
  Alcotest.(check bool) "raw forms differ" true (a <> b)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "registration is idempotent, kinds checked" `Quick test_registration;
          Alcotest.test_case "gauge merges by maximum" `Quick test_gauge_max;
          Alcotest.test_case "shards merge across pool domains" `Quick test_multi_domain_merge;
          Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_boundaries;
          QCheck_alcotest.to_alcotest qcheck_snapshot_jobs_invariant;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans nest and args survive" `Quick test_trace_nesting;
          Alcotest.test_case "export is well-formed trace-event JSON" `Quick
            test_trace_export_json;
        ] );
      ( "report",
        [
          Alcotest.test_case "to_json/of_json round trip" `Quick test_report_roundtrip;
          Alcotest.test_case "validator rejects malformed input" `Quick test_report_rejects;
        ] );
      ( "json",
        [
          Alcotest.test_case "print/parse round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed documents rejected" `Quick test_json_errors;
          Alcotest.test_case "sort_keys canonicalizes" `Quick test_json_sort_keys;
        ] );
    ]
