(* Unit tests for Tvs_netlist: gates, the circuit IR and builder, the .bench
   reader/writer, levelization, validation and statistics. *)

module Gate = Tvs_netlist.Gate
module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Validate = Tvs_netlist.Validate
module Stats = Tvs_netlist.Stats

(* --- gates ---------------------------------------------------------- *)

let test_gate_eval_bool () =
  Alcotest.(check bool) "and" true (Gate.eval_bool Gate.And [| true; true |]);
  Alcotest.(check bool) "nand" true (Gate.eval_bool Gate.Nand [| true; false |]);
  Alcotest.(check bool) "or" true (Gate.eval_bool Gate.Or [| false; true |]);
  Alcotest.(check bool) "nor" true (Gate.eval_bool Gate.Nor [| false; false |]);
  Alcotest.(check bool) "3-input xor parity" true (Gate.eval_bool Gate.Xor [| true; true; true |]);
  Alcotest.(check bool) "xnor" true (Gate.eval_bool Gate.Xnor [| true; true |]);
  Alcotest.(check bool) "not" false (Gate.eval_bool Gate.Not [| true |]);
  Alcotest.(check bool) "buf" true (Gate.eval_bool Gate.Buf [| true |])

let test_gate_eval_word () =
  (* Lane 0: AND(1,1)=1; lane 1: AND(1,0)=0. *)
  let mask = 0b11 in
  Alcotest.(check int) "word and" 0b01 (Gate.eval_word Gate.And [| 0b11; 0b01 |] mask);
  Alcotest.(check int) "word nand" 0b10 (Gate.eval_word Gate.Nand [| 0b11; 0b01 |] mask);
  Alcotest.(check int) "word not" 0b10 (Gate.eval_word Gate.Not [| 0b01 |] mask);
  Alcotest.(check int) "masked" 0 (Gate.eval_word Gate.Nor [| 0b11 |] 0)

let test_gate_word_matches_bool () =
  (* Exhaustive 2-input agreement between the scalar and word evaluators. *)
  List.iter
    (fun kind ->
      List.iter
        (fun (a, b) ->
          let expected = Gate.eval_bool kind [| a; b |] in
          let word =
            Gate.eval_word kind [| (if a then 1 else 0); (if b then 1 else 0) |] 1
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s(%b,%b)" (Gate.to_string kind) a b)
            expected (word = 1))
        [ (false, false); (false, true); (true, false); (true, true) ])
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_gate_strings () =
  List.iter
    (fun kind ->
      Alcotest.(check (option bool))
        (Gate.to_string kind ^ " roundtrip")
        (Some true)
        (Option.map (Gate.equal kind) (Gate.of_string (Gate.to_string kind))))
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not; Gate.Buf ];
  Alcotest.(check bool) "unknown keyword" true (Gate.of_string "DFF" = None);
  Alcotest.(check bool) "case-insensitive" true (Gate.of_string "nand" = Some Gate.Nand)

let test_gate_arity () =
  Alcotest.(check bool) "NOT unary only" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "XOR needs 2+" false (Gate.arity_ok Gate.Xor 1);
  Alcotest.(check bool) "AND accepts 4" true (Gate.arity_ok Gate.And 4)

let test_controlling_inversion () =
  Alcotest.(check (option bool)) "and controls on 0" (Some false) (Gate.controlling_value Gate.And);
  Alcotest.(check (option bool)) "nor controls on 1" (Some true) (Gate.controlling_value Gate.Nor);
  Alcotest.(check (option bool)) "xor has none" None (Gate.controlling_value Gate.Xor);
  Alcotest.(check bool) "nand inverts" true (Gate.inversion Gate.Nand);
  Alcotest.(check bool) "or does not" false (Gate.inversion Gate.Or)

(* --- builder -------------------------------------------------------- *)

let build_simple () =
  let b = Circuit.Builder.create "simple" in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let g = Circuit.Builder.gate b ~name:"g" Gate.And [ a; bb ] in
  Circuit.Builder.mark_output b g;
  Circuit.Builder.finish b

let test_builder_basics () =
  let c = build_simple () in
  Alcotest.(check int) "nets" 3 (Circuit.num_nets c);
  Alcotest.(check int) "inputs" 2 (Circuit.num_inputs c);
  Alcotest.(check int) "outputs" 1 (Circuit.num_outputs c);
  Alcotest.(check int) "find by name" 2 (Circuit.find_net c "g");
  Alcotest.(check bool) "is_output" true (Circuit.is_output c (Circuit.find_net c "g"))

let test_builder_duplicate_name () =
  let b = Circuit.Builder.create "dup" in
  let _ = Circuit.Builder.input b "a" in
  Alcotest.check_raises "duplicate" (Circuit.Build_error "duplicate net name \"a\"") (fun () ->
      ignore (Circuit.Builder.input b "a"))

let test_builder_dangling_flop () =
  let b = Circuit.Builder.create "dangling" in
  let _ = Circuit.Builder.input b "a" in
  let q = Circuit.Builder.flop_forward b "q" in
  ignore q;
  Alcotest.(check bool) "finish fails" true
    (try
       ignore (Circuit.Builder.finish b);
       false
     with Circuit.Build_error _ -> true)

let test_builder_arity_rejected () =
  let b = Circuit.Builder.create "bad-arity" in
  let a = Circuit.Builder.input b "a" in
  Alcotest.(check bool) "NOT with two inputs rejected" true
    (try
       ignore (Circuit.Builder.gate b Gate.Not [ a; a ]);
       false
     with Circuit.Build_error _ -> true)

let test_fanout_structure () =
  let b = Circuit.Builder.create "fan" in
  let a = Circuit.Builder.input b "a" in
  let g1 = Circuit.Builder.gate b ~name:"g1" Gate.Not [ a ] in
  let g2 = Circuit.Builder.gate b ~name:"g2" Gate.And [ a; g1 ] in
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finish b in
  let fanout_a = Circuit.fanout c (Circuit.find_net c "a") in
  Alcotest.(check int) "a has two consumers" 2 (Array.length fanout_a);
  Alcotest.(check bool) "g2 pin 1 is g1" true
    (Array.mem (Circuit.find_net c "g2", 1) (Circuit.fanout c (Circuit.find_net c "g1")))

let test_levels () =
  let b = Circuit.Builder.create "levels" in
  let a = Circuit.Builder.input b "a" in
  let g1 = Circuit.Builder.gate b ~name:"g1" Gate.Not [ a ] in
  let g2 = Circuit.Builder.gate b ~name:"g2" Gate.Not [ g1 ] in
  let g3 = Circuit.Builder.gate b ~name:"g3" Gate.And [ a; g2 ] in
  Circuit.Builder.mark_output b g3;
  let c = Circuit.Builder.finish b in
  Alcotest.(check int) "source level" 0 (Circuit.level c a);
  Alcotest.(check int) "g1" 1 (Circuit.level c g1);
  Alcotest.(check int) "g2" 2 (Circuit.level c g2);
  Alcotest.(check int) "g3" 3 (Circuit.level c g3);
  Alcotest.(check int) "depth" 3 (Circuit.depth c)

let test_topo_property () =
  let c = Tvs_circuits.S27.circuit () in
  let order = Circuit.topo_order c in
  let position = Array.make (Circuit.num_nets c) (-1) in
  Array.iteri (fun i net -> position.(net) <- i) order;
  Array.iter
    (fun net ->
      match Circuit.driver c net with
      | Circuit.Gate_node (_, ins) ->
          Array.iter
            (fun fanin ->
              match Circuit.driver c fanin with
              | Circuit.Gate_node _ ->
                  Alcotest.(check bool) "fanin precedes gate" true (position.(fanin) < position.(net))
              | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ())
            ins
      | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ())
    order

(* Sequential loops through flip-flops are fine; combinational ones must be
   rejected at [finish]. A flop-based loop (s27-style) must pass. *)
let test_flop_loop_allowed () =
  let b = Circuit.Builder.create "loop" in
  let q = Circuit.Builder.flop_forward b "q" in
  let g = Circuit.Builder.gate b ~name:"g" Gate.Not [ q ] in
  Circuit.Builder.connect_flop b q g;
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  Alcotest.(check int) "one flop" 1 (Circuit.num_flops c)

(* --- bench format --------------------------------------------------- *)

let test_parse_s27 () =
  let c = Bench_format.parse_string ~name:"s27" Tvs_circuits.S27.bench_text in
  Alcotest.(check int) "PI" 4 (Circuit.num_inputs c);
  Alcotest.(check int) "PO" 1 (Circuit.num_outputs c);
  Alcotest.(check int) "FF" 3 (Circuit.num_flops c);
  let stats = Stats.compute c in
  Alcotest.(check int) "gates" 10 stats.Stats.num_gates

let test_parse_roundtrip () =
  let c = Tvs_circuits.S27.circuit () in
  let c2 = Bench_format.parse_string ~name:"s27" (Bench_format.to_string c) in
  let s1 = Stats.compute c and s2 = Stats.compute c2 in
  Alcotest.(check int) "same gates" s1.Stats.num_gates s2.Stats.num_gates;
  Alcotest.(check int) "same flops" s1.Stats.num_flops s2.Stats.num_flops;
  Alcotest.(check int) "same depth" s1.Stats.depth s2.Stats.depth

let expect_parse_error text =
  try
    ignore (Bench_format.parse_string ~name:"bad" text);
    false
  with Bench_format.Parse_error _ -> true

let test_parse_errors () =
  Alcotest.(check bool) "unknown gate" true (expect_parse_error "g = FROB(a)\n");
  Alcotest.(check bool) "missing paren" true (expect_parse_error "INPUT(a\n");
  Alcotest.(check bool) "bad arity" true (expect_parse_error "g = NOT(a, b)\n");
  Alcotest.(check bool) "dff arity" true (expect_parse_error "q = DFF(a, b)\n");
  Alcotest.(check bool) "undefined net" true
    (expect_parse_error "INPUT(a)\nOUTPUT(g)\ng = AND(a, zz)\n");
  Alcotest.(check bool) "combinational cycle" true
    (expect_parse_error "INPUT(a)\nOUTPUT(d)\nd = AND(a, e)\ne = OR(d, a)\n");
  Alcotest.(check bool) "duplicate definition" true
    (expect_parse_error "INPUT(a)\nINPUT(a)\n")

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Duplicate definitions are a parse error naming both lines, whichever
   statement kinds collide. *)
let test_duplicate_definitions () =
  let expect text ~line ~mentions =
    match Bench_format.parse_string ~name:"dup" text with
    | (_ : Circuit.t) -> Alcotest.failf "accepted duplicate: %S" text
    | exception Bench_format.Parse_error (l, msg) ->
        Alcotest.(check int) ("error line for " ^ String.escaped text) line l;
        List.iter
          (fun frag ->
            Alcotest.(check bool)
              (Printf.sprintf "%S mentions %S" msg frag)
              true (string_contains msg frag))
          mentions
  in
  expect "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\ng = BUFF(a)\n" ~line:4
    ~mentions:[ "duplicate definition"; "\"g\""; "line 3" ];
  expect "INPUT(a)\na = NOT(a)\n" ~line:2 ~mentions:[ "duplicate definition"; "line 1" ];
  expect "INPUT(a)\nq = DFF(a)\nq = AND(a, a)\n" ~line:3 ~mentions:[ "\"q\""; "line 2" ];
  expect "INPUT(a)\nOUTPUT(g)\nOUTPUT(g)\ng = NOT(a)\n" ~line:3
    ~mentions:[ "duplicate OUTPUT"; "line 2" ]

let test_parse_forward_reference () =
  (* Gates listed before their fanins, as in real benchmark files. *)
  let text = "INPUT(a)\nOUTPUT(g2)\ng2 = NOT(g1)\ng1 = NOT(a)\n" in
  let c = Bench_format.parse_string ~name:"fwd" text in
  Alcotest.(check int) "three nets" 3 (Circuit.num_nets c)

let test_bench_file_io () =
  let path = Filename.temp_file "tvs" ".bench" in
  Bench_format.write_file path (Tvs_circuits.S27.circuit ());
  let c = Bench_format.parse_file path in
  Sys.remove path;
  Alcotest.(check string) "name from basename" (Filename.remove_extension (Filename.basename path))
    (Circuit.name c);
  Alcotest.(check int) "flops preserved" 3 (Circuit.num_flops c)

let test_parse_comments_and_blank () =
  let text = "# header\n\nINPUT(a)  # trailing\nOUTPUT(g)\ng = BUFF(a)\n" in
  let c = Bench_format.parse_string ~name:"cmt" text in
  Alcotest.(check int) "two nets" 2 (Circuit.num_nets c)

(* --- validate ------------------------------------------------------- *)

let test_validate_clean () =
  Alcotest.(check bool) "s27 is clean" true (Validate.is_clean (Tvs_circuits.S27.circuit ()))

let test_validate_dangling () =
  let b = Circuit.Builder.create "dangle" in
  let a = Circuit.Builder.input b "a" in
  let _g = Circuit.Builder.gate b ~name:"g" Gate.Not [ a ] in
  let c = Circuit.Builder.finish b in
  Alcotest.(check bool) "dangling reported" true
    (List.exists (function Validate.Dangling_net _ -> true | _ -> false) (Validate.check c))

let test_validate_no_inputs () =
  let c = Tvs_circuits.Fig1.circuit () in
  (* fig1 has no primary inputs by design; validation reports it and
     nothing else fatal. *)
  Alcotest.(check bool) "no-input issue" true
    (List.exists (function Validate.No_inputs -> true | _ -> false) (Validate.check c))

(* --- stats ---------------------------------------------------------- *)

let test_stats_s27 () =
  let s = Stats.compute (Tvs_circuits.S27.circuit ()) in
  Alcotest.(check int) "nets" 17 s.Stats.num_nets;
  Alcotest.(check int) "max fanin" 2 s.Stats.max_fanin;
  Alcotest.(check bool) "depth positive" true (s.Stats.depth > 0);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.gate_histogram in
  Alcotest.(check int) "histogram sums to gates" s.Stats.num_gates total

let test_scan_insert_reserved_names () =
  let b = Circuit.Builder.create "reserved" in
  let a = Circuit.Builder.input b "scan_en" in
  let q = Circuit.Builder.flop b ~name:"q" a in
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  Alcotest.(check bool) "reserved pin name rejected" true
    (try
       ignore (Tvs_netlist.Scan_insert.insert c);
       false
     with Circuit.Build_error _ -> true)

let test_scan_insert_names_preserved () =
  let inserted = (Tvs_netlist.Scan_insert.insert (Tvs_circuits.S27.circuit ())).Tvs_netlist.Scan_insert.circuit in
  List.iter
    (fun nm ->
      Alcotest.(check bool) (nm ^ " still present") true
        (Circuit.find_net_opt inserted nm <> None))
    [ "G0"; "G5"; "G17"; "scan_en"; "scan_in"; "scan_out_tap" ]

let () =
  Alcotest.run "netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "bool eval" `Quick test_gate_eval_bool;
          Alcotest.test_case "word eval" `Quick test_gate_eval_word;
          Alcotest.test_case "word agrees with bool" `Quick test_gate_word_matches_bool;
          Alcotest.test_case "string conversions" `Quick test_gate_strings;
          Alcotest.test_case "arity" `Quick test_gate_arity;
          Alcotest.test_case "controlling value / inversion" `Quick test_controlling_inversion;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "duplicate names rejected" `Quick test_builder_duplicate_name;
          Alcotest.test_case "dangling forward flop rejected" `Quick test_builder_dangling_flop;
          Alcotest.test_case "bad arity rejected" `Quick test_builder_arity_rejected;
          Alcotest.test_case "fanout structure" `Quick test_fanout_structure;
          Alcotest.test_case "levels and depth" `Quick test_levels;
          Alcotest.test_case "topological order" `Quick test_topo_property;
          Alcotest.test_case "sequential loop allowed" `Quick test_flop_loop_allowed;
        ] );
      ( "bench-format",
        [
          Alcotest.test_case "parse s27" `Quick test_parse_s27;
          Alcotest.test_case "print/parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "duplicate definitions" `Quick test_duplicate_definitions;
          Alcotest.test_case "forward references" `Quick test_parse_forward_reference;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blank;
          Alcotest.test_case "file round-trip" `Quick test_bench_file_io;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean circuit" `Quick test_validate_clean;
          Alcotest.test_case "dangling net" `Quick test_validate_dangling;
          Alcotest.test_case "missing inputs" `Quick test_validate_no_inputs;
        ] );
      ("stats", [ Alcotest.test_case "s27 statistics" `Quick test_stats_s27 ]);
      ( "scan-insert",
        [
          Alcotest.test_case "reserved names rejected" `Quick test_scan_insert_reserved_names;
          Alcotest.test_case "names preserved" `Quick test_scan_insert_names_preserved;
        ] );
    ]
