(* Unit tests for Tvs_util: deterministic RNG, the table renderer, the
   clocks, the environment knobs and the domain pool. *)

module Rng = Tvs_util.Rng
module Table = Tvs_util.Table
module Pool = Tvs_util.Pool
module Clock = Tvs_util.Clock
module Env = Tvs_util.Env

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0, 17)" true (v >= 0 && v < 17)
  done

let test_rng_int_spread () =
  let rng = Rng.create 9L in
  let seen = Array.make 8 0 in
  for _ = 1 to 8_000 do
    let v = Rng.int rng 8 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i n -> Alcotest.(check bool) (Printf.sprintf "bucket %d populated" i) true (n > 500))
    seen

let test_rng_of_string_distinct () =
  let a = Rng.next_int64 (Rng.of_string "s444") in
  let b = Rng.next_int64 (Rng.of_string "s526") in
  Alcotest.(check bool) "different labels, different streams" true (a <> b)

let test_rng_split_independent () =
  let parent = Rng.create 1L in
  let child = Rng.split parent in
  let c1 = Rng.next_int64 child in
  let p1 = Rng.next_int64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_shuffle_small () =
  let rng = Rng.create 5L in
  Rng.shuffle rng [||];
  let one = [| 42 |] in
  Rng.shuffle rng one;
  Alcotest.(check (array int)) "singleton untouched" [| 42 |] one

let test_rng_float_bounds () =
  let rng = Rng.create 11L in
  for _ = 1 to 1_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_pick () =
  let rng = Rng.create 13L in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element belongs" true (Array.mem (Rng.pick rng arr) arr)
  done

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header mentions name" true
        (String.length header >= 4 && String.sub header 0 4 = "name");
      Alcotest.(check bool) "rule is dashes" true (String.for_all (fun ch -> ch = '-') rule)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_table_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only-one" ];
  let out = Table.render t in
  Alcotest.(check bool) "renders without error" true (String.length out > 0)

let test_table_rule () =
  let t = Table.create [ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check int) "header+rule+row+rule+row (+trailing)" 6 (List.length lines)

let test_table_alignment () =
  let t = Table.create ~align:[ Table.Left; Table.Center; Table.Right ] [ "l"; "c"; "r" ] in
  Table.add_row t [ "x"; "y"; "z" ];
  Table.add_row t [ "wide-cell"; "wide-cell"; "wide-cell" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (match lines with
  | _ :: _ :: row :: _ ->
      Alcotest.(check bool) "left cell flush" true (String.length row > 0 && row.[0] = 'x');
      Alcotest.(check bool) "right cell flush" true (row.[String.length row - 1] = 'z')
  | _ -> Alcotest.fail "expected rows");
  ()

let test_fmt_ratio () =
  Alcotest.(check string) "two decimals" "0.73" (Table.fmt_ratio 0.734);
  Alcotest.(check string) "rounds" "0.74" (Table.fmt_ratio 0.736);
  Alcotest.(check string) "one" "1.00" (Table.fmt_ratio 1.0)

(* ------------------------------------------------------------------ *)
(* Domain pool. *)

exception Boom of int

let test_pool_jobs1_degenerate () =
  let p = Pool.create ~jobs:1 () in
  Alcotest.(check int) "jobs clamped" 1 (Pool.jobs p);
  let out = Pool.parallel_map_chunks p ~n:10 (fun ~slot i -> (slot, i * i)) in
  Array.iteri
    (fun i (slot, sq) ->
      Alcotest.(check int) "inline slot is the submitter" 0 slot;
      Alcotest.(check int) "value" (i * i) sq)
    out;
  Pool.shutdown p

let test_pool_ordering_deterministic () =
  (* The result array is keyed by chunk index, so a 4-lane pool must return
     exactly what the sequential path returns, submission after submission. *)
  let p1 = Pool.create ~jobs:1 () and p4 = Pool.create ~jobs:4 () in
  let work ~slot:_ i = (i * 7919) mod 104729 in
  for n = 1 to 40 do
    let a = Pool.parallel_map_chunks p1 ~n work in
    let b = Pool.parallel_map_chunks p4 ~n work in
    Alcotest.(check (array int)) (Printf.sprintf "n=%d identical" n) a b
  done;
  Pool.shutdown p1;
  Pool.shutdown p4

let test_pool_slot_bounds () =
  let p = Pool.create ~jobs:3 () in
  let slots = Pool.parallel_map_chunks p ~n:64 (fun ~slot _ -> slot) in
  Array.iter
    (fun s -> Alcotest.(check bool) "slot in [0, jobs)" true (s >= 0 && s < Pool.jobs p))
    slots;
  Pool.shutdown p

let test_pool_exception_propagation () =
  let p = Pool.create ~jobs:4 () in
  (match Pool.parallel_map_chunks p ~n:32 (fun ~slot:_ i -> if i = 17 then raise (Boom i) else i) with
  | _ -> Alcotest.fail "expected Boom to reach the submitter"
  | exception Boom 17 -> ());
  (* The pool survives a failed submission. *)
  let out = Pool.parallel_map_chunks p ~n:8 (fun ~slot:_ i -> i + 1) in
  Alcotest.(check (array int)) "usable after exception" [| 1; 2; 3; 4; 5; 6; 7; 8 |] out;
  Pool.shutdown p

let test_pool_reuse_across_submissions () =
  let p = Pool.create ~jobs:4 () in
  for round = 1 to 50 do
    let out = Pool.parallel_map_chunks p ~n:round (fun ~slot:_ i -> (round * 1000) + i) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init round (fun i -> (round * 1000) + i))
      out
  done;
  Pool.shutdown p

(* Regression: shutdown used to leave the pool permanently dead (stop flag
   set, spawned flag set), so the next fan-out silently degraded to the
   submitter alone. A shut-down pool must behave exactly like a fresh one:
   the next fanned-out submission respawns a full crew. *)
let test_pool_shutdown_respawn () =
  let p = Pool.create ~jobs:4 () in
  ignore (Pool.parallel_map_chunks p ~n:16 (fun ~slot:_ i -> i));
  Alcotest.(check int) "crew up" 3 (Pool.num_spawned p);
  Pool.shutdown p;
  Alcotest.(check int) "crew joined" 0 (Pool.num_spawned p);
  let out = Pool.parallel_map_chunks p ~n:16 (fun ~slot:_ i -> i * 3) in
  Alcotest.(check (array int)) "results correct after respawn"
    (Array.init 16 (fun i -> i * 3))
    out;
  Alcotest.(check int) "fresh crew respawned" 3 (Pool.num_spawned p);
  Pool.shutdown p;
  (* A submission that stays inline after shutdown spawns nothing. *)
  let out = Pool.parallel_map_chunks p ~n:1 (fun ~slot i -> (slot, i)) in
  Alcotest.(check int) "single chunk inline" 0 (fst out.(0));
  Alcotest.(check int) "no spawn for inline work" 0 (Pool.num_spawned p)

(* Regression: the shared registry handed out shut-down pools. A server that
   shuts the shared pool down between requests must get a working pool from
   the registry afterwards, not a dead entry. *)
let test_pool_shutdown_shared () =
  let p = Pool.shared ~jobs:2 in
  ignore (Pool.parallel_map_chunks p ~n:8 (fun ~slot:_ i -> i));
  Pool.shutdown p;
  let p' = Pool.shared ~jobs:2 in
  let out = Pool.parallel_map_chunks p' ~n:8 (fun ~slot:_ i -> i + 100) in
  Alcotest.(check (array int)) "shared pool works after shutdown"
    (Array.init 8 (fun i -> i + 100))
    out;
  Alcotest.(check int) "shared crew respawned" 1 (Pool.num_spawned p');
  Pool.shutdown p'

(* Lazy spawning: creating a pool costs no domains; single-chunk and jobs=1
   submissions run in place on the caller forever; the first submission that
   actually fans out spawns jobs - 1 workers, once. *)
let test_pool_lazy_spawn () =
  let p = Pool.create ~jobs:4 () in
  Alcotest.(check int) "create spawns nothing" 0 (Pool.num_spawned p);
  let out = Pool.parallel_map_chunks p ~n:1 (fun ~slot i -> (slot, i)) in
  Alcotest.(check int) "single chunk runs inline" 0 (fst out.(0));
  Alcotest.(check int) "still no domains" 0 (Pool.num_spawned p);
  let out = Pool.parallel_map_chunks p ~n:16 (fun ~slot:_ i -> i * 2) in
  Alcotest.(check (array int)) "fan-out results" (Array.init 16 (fun i -> i * 2)) out;
  Alcotest.(check int) "first fan-out spawns jobs-1" 3 (Pool.num_spawned p);
  ignore (Pool.parallel_map_chunks p ~n:16 (fun ~slot:_ i -> i));
  Alcotest.(check int) "spawn happens once" 3 (Pool.num_spawned p);
  Pool.shutdown p;
  let p1 = Pool.create ~jobs:1 () in
  ignore (Pool.parallel_map_chunks p1 ~n:32 (fun ~slot:_ i -> i));
  Alcotest.(check int) "jobs=1 never spawns" 0 (Pool.num_spawned p1);
  Pool.shutdown p1

let test_pool_default_jobs_override () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 3;
      Alcotest.(check int) "override visible" 3 (Pool.default_jobs ());
      Alcotest.check_raises "zero rejected"
        (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1") (fun () ->
          Pool.set_default_jobs 0))

let test_clock_time_it () =
  let v, dt = Clock.time_it (fun () -> 42) in
  Alcotest.(check int) "value passed through" 42 v;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0);
  (* Sequence the reads explicitly: OCaml evaluates operator arguments
     right-to-left, so [now () <= now ()] would compare them backwards. *)
  let a = Clock.now () in
  let b = Clock.now () in
  Alcotest.(check bool) "monotonic now" true (a <= b)

(* Regression: [now] used to read the wall clock, so an NTP step or DST
   shift mid-run produced negative durations in the pool probe and trace
   spans. The monotonic clock may never step backwards between reads. *)
let test_clock_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    Alcotest.(check bool) "never steps back" true (t >= !prev);
    prev := t
  done;
  let _, dt = Clock.time_it (fun () -> Sys.opaque_identity (Array.init 4096 Fun.id)) in
  Alcotest.(check bool) "timed work is non-negative" true (dt >= 0.0)

let test_clock_wall () =
  (* [wall] stays on the Unix epoch for human-facing timestamps; [now] makes
     no epoch promise, so the two are distinct accessors on purpose. *)
  let w = Clock.wall () in
  Alcotest.(check bool) "epoch seconds" true (w > 1.0e9);
  let w' = Unix.gettimeofday () in
  Alcotest.(check bool) "agrees with gettimeofday" true (Float.abs (w' -. w) < 60.0)

(* ------------------------------------------------------------------ *)
(* Environment knobs. *)

let test_env_unset_is_silent () =
  let before = Env.warning_count () in
  Alcotest.(check (option int)) "unset is None" None (Env.positive_int "TVS_TEST_NEVER_SET");
  Alcotest.(check int) "no warning for unset" before (Env.warning_count ())

let test_env_valid_parses () =
  Unix.putenv "TVS_TEST_VALID" "  12 ";
  let before = Env.warning_count () in
  Alcotest.(check (option int)) "parses with whitespace" (Some 12)
    (Env.positive_int "TVS_TEST_VALID");
  Alcotest.(check int) "no warning" before (Env.warning_count ())

(* Regression: a malformed TVS_JOBS used to be silently swallowed by
   [int_of_string_opt], running the deployment at the wrong parallelism with
   no trace. Bad values must warn — once per distinct value, so hot paths
   that re-read the knob do not spam — and fire the installable hook that
   tvs_obs routes into the [util.env.invalid] counter. *)
let test_env_invalid_warns_once () =
  let hooked = ref [] in
  Env.set_warning_hook (Some (fun ~key ~value -> hooked := (key, value) :: !hooked));
  Fun.protect
    ~finally:(fun () -> Env.set_warning_hook None)
    (fun () ->
      let before = Env.warning_count () in
      Unix.putenv "TVS_JOBS" "sixteen";
      Alcotest.(check (option int)) "bad TVS_JOBS falls back" None
        (Env.positive_int ~fallback:"the hardware core count" "TVS_JOBS");
      Alcotest.(check int) "warned once" (before + 1) (Env.warning_count ());
      ignore (Env.positive_int "TVS_JOBS");
      ignore (Env.positive_int "TVS_JOBS");
      Alcotest.(check int) "same value deduped" (before + 1) (Env.warning_count ());
      Unix.putenv "TVS_JOBS" "0";
      Alcotest.(check (option int)) "non-positive falls back" None (Env.positive_int "TVS_JOBS");
      Alcotest.(check int) "changed bad value warns again" (before + 2) (Env.warning_count ());
      Alcotest.(check (list (pair string string)))
        "hook saw each fresh value"
        [ ("TVS_JOBS", "0"); ("TVS_JOBS", "sixteen") ]
        !hooked;
      (* Leave the knob valid so later reads in this process stay silent. *)
      Unix.putenv "TVS_JOBS" "1";
      Alcotest.(check (option int)) "valid again" (Some 1) (Env.positive_int "TVS_JOBS"))

(* --- sat ---------------------------------------------------------------- *)

module Sat = Tvs_util.Sat

let test_sat_basic () =
  (* (1 ∨ 2) ∧ ¬1 ∧ ¬2 is unsatisfiable; drop one unit and it isn't. *)
  (match Sat.solve ~nvars:2 [ [ 1; 2 ]; [ -1 ]; [ -2 ] ] with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "unsat formula not refuted");
  match Sat.solve ~nvars:2 [ [ 1; 2 ]; [ -1 ] ] with
  | Sat.Sat model ->
      Alcotest.(check bool) "model checks" true
        (Sat.check ~nvars:2 [ [ 1; 2 ]; [ -1 ] ] model)
  | _ -> Alcotest.fail "sat formula not solved"

let test_sat_normalization () =
  (* Duplicate literals collapse: [1; 1] is the unit clause [1], so the
     conflict with [-1] falls out of propagation alone — zero decisions. *)
  (match Sat.solve_stats ~nvars:1 [ [ 1; 1 ]; [ -1 ] ] with
  | Sat.Unsat, stats -> Alcotest.(check int) "no search needed" 0 stats.Sat.decisions
  | _ -> Alcotest.fail "duplicate-literal unit not propagated");
  (* A tautological clause is dropped, not branched on: alone it is the
     empty (satisfiable) formula, and alongside a real conflict it neither
     blocks the refutation nor costs decisions. *)
  (match Sat.solve ~nvars:1 [ [ 1; -1 ] ] with
  | Sat.Sat _ -> ()
  | _ -> Alcotest.fail "tautology not satisfiable");
  (match Sat.solve_stats ~nvars:3 [ [ 3; -3; 1 ]; [ 2 ]; [ -2 ] ] with
  | Sat.Unsat, stats -> Alcotest.(check int) "tautology costs nothing" 0 stats.Sat.decisions
  | _ -> Alcotest.fail "conflict behind a tautology missed");
  (* An empty clause is immediately unsat, with the all-zero stats. *)
  match Sat.solve_stats ~nvars:1 [ [] ] with
  | Sat.Unsat, stats -> Alcotest.(check bool) "no work recorded" true (stats = Sat.no_stats)
  | _ -> Alcotest.fail "empty clause not unsat"

let test_sat_stats_and_budget () =
  (* A 2-variable XOR constraint needs at least one decision; the counters
     must report the work and the budget must cut it off as Unknown. *)
  let xor = [ [ 1; 2 ]; [ -1; -2 ] ] in
  (match Sat.solve_stats ~nvars:2 xor with
  | Sat.Sat _, stats ->
      Alcotest.(check bool) "decisions counted" true (stats.Sat.decisions >= 1);
      Alcotest.(check bool) "propagations counted" true (stats.Sat.propagations >= 1)
  | _ -> Alcotest.fail "xor not solved");
  (* Pigeonhole 3-into-2: small but forces search; max_decisions:0 must
     give up before deciding anything. *)
  let php =
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ]; [ -1; -3 ]; [ -1; -5 ]; [ -3; -5 ]; [ -2; -4 ];
      [ -2; -6 ]; [ -4; -6 ] ]
  in
  (match Sat.solve ~nvars:6 php with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole not refuted");
  match Sat.solve_stats ~max_decisions:0 ~nvars:6 php with
  | Sat.Unknown, stats ->
      (* the counter includes the node where the budget check fired *)
      Alcotest.(check bool) "budget respected" true (stats.Sat.decisions <= 1)
  | _ -> Alcotest.fail "zero budget did not return Unknown"

let test_sat_decision_order () =
  (* decision_order may name any variable, including internal (non-source)
     ones — the outputs-first miter heuristic depends on that — and must
     not change the verdict. *)
  let clauses = [ [ 1; 2; 3 ]; [ -3; 1 ]; [ -2; 3 ]; [ -1; 2 ] ] in
  let expect_sat order =
    match Sat.solve ?decision_order:order ~nvars:3 clauses with
    | Sat.Sat model -> Alcotest.(check bool) "model checks" true (Sat.check ~nvars:3 clauses model)
    | _ -> Alcotest.fail "satisfiable formula not solved"
  in
  expect_sat None;
  expect_sat (Some [ 3; 2; 1 ]);
  expect_sat (Some [ 2 ])

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always lands in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_shuffle_preserves =
  QCheck.Test.make ~name:"Rng.shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create (Int64.of_int seed) in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int spread" `Quick test_rng_int_spread;
          Alcotest.test_case "label-derived streams differ" `Quick test_rng_of_string_distinct;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "shuffle degenerate sizes" `Quick test_rng_shuffle_small;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "pick membership" `Quick test_rng_pick;
          QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
          QCheck_alcotest.to_alcotest qcheck_shuffle_preserves;
        ] );
      ( "table",
        [
          Alcotest.test_case "render basics" `Quick test_table_render;
          Alcotest.test_case "short rows padded" `Quick test_table_padding;
          Alcotest.test_case "horizontal rules" `Quick test_table_rule;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "ratio formatting" `Quick test_fmt_ratio;
        ] );
      ( "pool",
        [
          Alcotest.test_case "jobs=1 degenerates to inline" `Quick test_pool_jobs1_degenerate;
          Alcotest.test_case "chunk order deterministic" `Quick test_pool_ordering_deterministic;
          Alcotest.test_case "slots within bounds" `Quick test_pool_slot_bounds;
          Alcotest.test_case "exceptions reach the submitter" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "reuse across submissions" `Quick test_pool_reuse_across_submissions;
          Alcotest.test_case "shutdown then respawn" `Quick test_pool_shutdown_respawn;
          Alcotest.test_case "shared pool survives shutdown" `Quick test_pool_shutdown_shared;
          Alcotest.test_case "lazy domain spawn" `Quick test_pool_lazy_spawn;
          Alcotest.test_case "default-jobs override" `Quick test_pool_default_jobs_override;
        ] );
      ( "clock",
        [
          Alcotest.test_case "time_it" `Quick test_clock_time_it;
          Alcotest.test_case "now is monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "wall stays on the epoch" `Quick test_clock_wall;
        ] );
      ( "env",
        [
          Alcotest.test_case "unset is silent" `Quick test_env_unset_is_silent;
          Alcotest.test_case "valid value parses" `Quick test_env_valid_parses;
          Alcotest.test_case "bad value warns once per value" `Quick test_env_invalid_warns_once;
        ] );
      ( "sat",
        [
          Alcotest.test_case "basic sat/unsat" `Quick test_sat_basic;
          Alcotest.test_case "clause normalization" `Quick test_sat_normalization;
          Alcotest.test_case "stats and budget" `Quick test_sat_stats_and_budget;
          Alcotest.test_case "decision order" `Quick test_sat_decision_order;
        ] );
    ]
