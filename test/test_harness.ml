(* Tests for Tvs_harness: per-circuit preparation (and its memoization) and
   the experiment runners' outputs. *)

module Circuit = Tvs_netlist.Circuit
module Baseline = Tvs_core.Baseline
module Prep = Tvs_harness.Prep
module Experiments = Tvs_harness.Experiments

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_prep_structure () =
  let prep = Prep.get "s444" in
  Alcotest.(check string) "circuit name" "s444" (Circuit.name prep.Prep.circuit);
  Alcotest.(check bool) "collapsed smaller than full" true
    (Array.length prep.Prep.faults < Array.length prep.Prep.all_faults);
  Alcotest.(check bool) "testable within collapsed" true
    (Array.length prep.Prep.testable <= Array.length prep.Prep.faults);
  Alcotest.(check bool) "baseline nonempty" true (prep.Prep.baseline.Baseline.num_vectors > 0)

let test_prep_memoized () =
  let a = Prep.get "s444" and b = Prep.get "s444" in
  Alcotest.(check bool) "same physical prep" true (a == b);
  let scaled = Prep.get ~scale:0.5 "s444" in
  Alcotest.(check bool) "scaled prep distinct" true (a != scaled);
  Alcotest.(check string) "scaled name" "s444@0.5" (Circuit.name scaled.Prep.circuit)

let test_prep_seed_streams () =
  let prep = Prep.get "s444" in
  let a = Tvs_util.Rng.next_int64 (Prep.engine_seed prep "x") in
  let b = Tvs_util.Rng.next_int64 (Prep.engine_seed prep "y") in
  let a' = Tvs_util.Rng.next_int64 (Prep.engine_seed prep "x") in
  Alcotest.(check bool) "labels separate streams" true (a <> b);
  Alcotest.(check int64) "same label, same stream" a a'

let test_run_flow_sane () =
  let prep = Prep.get "s444" in
  let r = Experiments.run_flow ~label:"harness-test" prep in
  Alcotest.(check bool) "coverage complete" true (r.Experiments.coverage >= 0.999);
  Alcotest.(check bool) "compresses memory" true (r.Experiments.m < 1.0);
  Alcotest.(check bool) "compresses time" true (r.Experiments.t < 1.0);
  Alcotest.(check int) "aTV consistent" prep.Prep.baseline.Baseline.num_vectors r.Experiments.atv

let test_run_flow_deterministic () =
  let prep = Prep.get "s444" in
  let a = Experiments.run_flow ~label:"det" prep in
  let b = Experiments.run_flow ~label:"det" prep in
  Alcotest.(check int) "same TV" a.Experiments.tv b.Experiments.tv;
  Alcotest.(check (float 0.00001)) "same m" a.Experiments.m b.Experiments.m

let test_table1_text () =
  let out = Experiments.table1 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table1 mentions " ^ needle) true (contains ~needle out))
    [ "correct"; "E-F/1"; "F/0"; "110"; "after final unload" ]

let test_table_defaults () =
  Alcotest.(check (float 0.0001)) "s9234 halved in tables 2-4" 0.5
    (Experiments.table24_default_scale "s9234");
  Alcotest.(check (float 0.0001)) "s444 full" 1.0 (Experiments.table24_default_scale "s444");
  Alcotest.(check (float 0.0001)) "giants quartered in table 5" 0.25
    (Experiments.table5_default_scale "s35932")

let test_small_table_renders () =
  let out = Experiments.table4 ~circuits:[ "s444" ] () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table4 column " ^ needle) true (contains ~needle out))
    [ "s444"; "Random"; "Hardness"; "Most-faults"; "Ave" ]

let test_randtest_small_budget () =
  (* Regression: a pattern budget below the fixed checkpoints must clamp
     them rather than crash. *)
  let out = Experiments.random_testability ~patterns:16 ~circuits:[ "s444" ] () in
  Alcotest.(check bool) "renders" true (contains ~needle:"cov@16" out);
  Alcotest.(check bool) "no oversized checkpoint" false (contains ~needle:"cov@128" out)

let test_comparison_renders () =
  let out = Experiments.comparison_study ~circuits:[ "s444" ] () in
  Alcotest.(check bool) "static columns present" true (contains ~needle:"static m" out);
  Alcotest.(check bool) "row present" true (contains ~needle:"s444" out)

(* --- CLI validation ----------------------------------------------------- *)

module Cli = Tvs_harness.Cli

let test_cli_accepts_known_specs () =
  List.iter
    (fun spec ->
      match Cli.check_spec spec with
      | Ok s -> Alcotest.(check string) ("spec " ^ spec) spec s
      | Error msg -> Alcotest.fail (Printf.sprintf "%s rejected: %s" spec msg))
    [ "s27"; "fig1"; "s444"; "s38584" ]

let test_cli_rejects_bad_spec () =
  (* The bug this guards: unknown circuit specs used to die in [failwith],
     bypassing the drivers' error reporting. *)
  match Cli.check_spec "no-such-circuit" with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error msg ->
      Alcotest.(check bool) "names the spec" true (contains ~needle:"no-such-circuit" msg);
      Alcotest.(check bool) "lists the profiles" true (contains ~needle:"s444" msg);
      (match Cli.load_circuit "no-such-circuit" with
      | Ok _ -> Alcotest.fail "bad spec loaded"
      | Error _ -> ())

let test_cli_loads_circuit () =
  match Cli.load_circuit ~scale:0.5 "s444" with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
      Alcotest.(check bool) "non-empty" true (Tvs_netlist.Circuit.num_nets c > 0)

let test_cli_table_and_jobs_bounds () =
  List.iter
    (fun n -> Alcotest.(check bool) (Printf.sprintf "table %d ok" n) true (Cli.check_table n = Ok n))
    [ 1; 3; 5 ];
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "table %d rejected" n)
        true
        (Result.is_error (Cli.check_table n)))
    [ 0; 6; -2 ];
  Alcotest.(check bool) "jobs 1 ok" true (Cli.check_jobs 1 = Ok 1);
  Alcotest.(check bool) "jobs 8 ok" true (Cli.check_jobs 8 = Ok 8);
  Alcotest.(check bool) "jobs 0 rejected" true (Result.is_error (Cli.check_jobs 0));
  Alcotest.(check bool) "batch 1 ok" true (Cli.check_batch 1 = Ok 1);
  Alcotest.(check bool) "batch 16 ok" true (Cli.check_batch 16 = Ok 16);
  Alcotest.(check bool) "batch 0 rejected" true (Result.is_error (Cli.check_batch 0));
  Alcotest.(check bool) "scale 1.0 ok" true (Cli.check_scale 1.0 = Ok 1.0);
  Alcotest.(check bool) "scale 0.25 ok" true (Cli.check_scale 0.25 = Ok 0.25);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "scale %g rejected" f)
        true
        (Result.is_error (Cli.check_scale f)))
    [ 0.0; -0.5; 1.5; Float.nan ]

let () =
  Alcotest.run "harness"
    [
      ( "prep",
        [
          Alcotest.test_case "structure" `Quick test_prep_structure;
          Alcotest.test_case "memoization" `Quick test_prep_memoized;
          Alcotest.test_case "seed streams" `Quick test_prep_seed_streams;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "run_flow sanity" `Quick test_run_flow_sane;
          Alcotest.test_case "run_flow determinism" `Quick test_run_flow_deterministic;
          Alcotest.test_case "table 1 text" `Quick test_table1_text;
          Alcotest.test_case "default scales" `Quick test_table_defaults;
          Alcotest.test_case "table 4 rendering" `Quick test_small_table_renders;
          Alcotest.test_case "comparison rendering" `Quick test_comparison_renders;
          Alcotest.test_case "randtest small budget" `Quick test_randtest_small_budget;
        ] );
      ( "cli",
        [
          Alcotest.test_case "accepts known specs" `Quick test_cli_accepts_known_specs;
          Alcotest.test_case "rejects bad spec" `Quick test_cli_rejects_bad_spec;
          Alcotest.test_case "loads a profile" `Quick test_cli_loads_circuit;
          Alcotest.test_case "table and jobs bounds" `Quick test_cli_table_and_jobs_bounds;
        ] );
    ]
