(* The test-point-insertion subsystem: candidate mining off the lint risk
   table, the netlist transform (observe cells, PO taps, control points),
   the greedy study's determinism/cache/conversion guarantees, the lint
   shift sweep, the report schema bump, and the Verilog round-trip of
   TPI-modified netlists. *)

module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Scan_insert = Tvs_netlist.Scan_insert
module Gate = Tvs_netlist.Gate
module Synth = Tvs_circuits.Synth
module Profiles = Tvs_circuits.Profiles
module Scan_lint = Tvs_lint.Scan_lint
module Lint = Tvs_lint.Lint
module Diagnostic = Tvs_lint.Diagnostic
module Candidate = Tvs_tpi.Candidate
module Transform = Tvs_tpi.Transform
module Tpi = Tvs_tpi.Tpi
module Experiments = Tvs_harness.Experiments
module Cache = Tvs_store.Cache
module Emitter = Tvs_verilog.Emitter
module Frontend = Tvs_verilog.Frontend
module Json = Tvs_obs.Json
module Report = Tvs_obs.Report
module Wire = Tvs_util.Wire

let s27 () = Tvs_circuits.S27.circuit ()
let s444 () = Synth.generate_named "s444"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "tvs-tpi-test-%d-%d" (Unix.getpid ()) !n)
    in
    d

(* --- candidate mining -------------------------------------------------- *)

let test_mine_ranked () =
  let c = s444 () in
  let cands = Candidate.mine c in
  Alcotest.(check bool) "mining finds candidates on s444" true (cands <> []);
  (* Ranked by score, descending; every target is a real net. *)
  let rec sorted = function
    | (a : Candidate.t) :: (b : Candidate.t) :: rest -> a.score >= b.score && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "score-descending" true (sorted cands);
  List.iter
    (fun (cand : Candidate.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "target %s exists" cand.net)
        true
        (Circuit.find_net_opt c cand.net <> None))
    cands;
  (* Default mining proposes observe cells only. *)
  Alcotest.(check bool) "observe cells only by default" true
    (List.for_all (fun (x : Candidate.t) -> x.kind = Candidate.Observe_cell) cands);
  (* The limit truncates the ranking, keeping the prefix. *)
  let top = Candidate.mine ~limit:3 c in
  Alcotest.(check int) "limit respected" 3 (List.length top);
  Alcotest.(check bool) "limit keeps the ranking prefix" true
    (top = List.filteri (fun i _ -> i < 3) cands);
  (* Optional kinds appear only when asked for. *)
  let with_extras = Candidate.mine ~po_taps:true ~controls:true c in
  Alcotest.(check bool) "po taps mined on demand" true
    (List.exists (fun (x : Candidate.t) -> x.kind = Candidate.Observe_po) with_extras);
  Alcotest.(check bool) "control points mined on demand" true
    (List.exists
       (fun (x : Candidate.t) ->
         x.kind = Candidate.Control_one || x.kind = Candidate.Control_zero)
       with_extras);
  (* Mining is deterministic. *)
  Alcotest.(check bool) "deterministic" true (Candidate.mine c = Candidate.mine c)

(* --- the netlist transform --------------------------------------------- *)

let obs_cand net : Candidate.t =
  { kind = Candidate.Observe_cell; net; score = 0; hits = 0; dmem = 2; dtime = 2 }

let test_transform_observe () =
  let c = s27 () in
  let c' = Transform.apply c [ obs_cand "G10" ] in
  Alcotest.(check int) "chain extended by one" (Circuit.num_flops c + 1) (Circuit.num_flops c');
  Alcotest.(check int) "inputs unchanged" (Circuit.num_inputs c) (Circuit.num_inputs c');
  Alcotest.(check int) "outputs unchanged" (Circuit.num_outputs c) (Circuit.num_outputs c');
  (* The observe cell is the chain tail, in declaration order. *)
  let chain = Circuit.flops c' in
  let tail = chain.(Array.length chain - 1) in
  Alcotest.(check string) "observe cell at the chain tail" "tpi_obs_G10"
    (Circuit.net_name c' tail);
  (* Original net names survive unchanged. *)
  for net = 0 to Circuit.num_nets c - 1 do
    let nm = Circuit.net_name c net in
    if Circuit.find_net_opt c' nm = None then
      Alcotest.failf "original net %s lost by the transform" nm
  done;
  (* Deterministic: applying twice gives digest-identical circuits. *)
  let d x = Tvs_store.Digest.to_hex (Tvs_store.Digest.circuit x) in
  Alcotest.(check string) "digest-stable" (d c') (d (Transform.apply c [ obs_cand "G10" ]))

let test_transform_po_tap_and_controls () =
  let c = s27 () in
  let cands : Candidate.t list =
    [
      { kind = Candidate.Observe_po; net = "G10"; score = 0; hits = 0; dmem = 1; dtime = 0 };
      { kind = Candidate.Control_one; net = "G11"; score = 0; hits = 0; dmem = 1; dtime = 0 };
      { kind = Candidate.Control_zero; net = "G8"; score = 0; hits = 0; dmem = 1; dtime = 0 };
    ]
  in
  let c' = Transform.apply c cands in
  Alcotest.(check int) "po tap adds one output" (Circuit.num_outputs c + 1)
    (Circuit.num_outputs c');
  Alcotest.(check int) "two control points add two inputs" (Circuit.num_inputs c + 2)
    (Circuit.num_inputs c');
  Alcotest.(check int) "chain unchanged" (Circuit.num_flops c) (Circuit.num_flops c');
  (* The force-1 control is an OR of the original driver and the new PI. *)
  let g = Circuit.find_net c' "tpi_ctlg_G11" in
  (match Circuit.driver c' g with
  | Circuit.Gate_node (Gate.Or, ins) ->
      let names = Array.map (Circuit.net_name c') ins in
      Alcotest.(check bool) "or reads the original driver and the control pi" true
        (Array.exists (fun n -> n = "G11") names
        && Array.exists (fun n -> n = "tpi_ctl_G11") names)
  | _ -> Alcotest.fail "force-1 control is not an OR gate");
  (* The force-0 control is an AND with the inverted PI. *)
  (match Circuit.driver c' (Circuit.find_net c' "tpi_ctlg_G8") with
  | Circuit.Gate_node (Gate.And, _) -> ()
  | _ -> Alcotest.fail "force-0 control is not an AND gate")

let test_transform_rejects () =
  let c = s27 () in
  let raises f =
    match f () with
    | exception Circuit.Build_error _ -> true
    | (_ : Circuit.t) -> false
  in
  Alcotest.(check bool) "unknown target rejected" true
    (raises (fun () -> Transform.apply c [ obs_cand "no_such_net" ]));
  Alcotest.(check bool) "duplicate (kind, net) rejected" true
    (raises (fun () -> Transform.apply c [ obs_cand "G10"; obs_cand "G10" ]));
  let c' = Transform.apply c [ obs_cand "G10" ] in
  Alcotest.(check bool) "reserved prefix rejected on re-application" true
    (raises (fun () -> Transform.apply c' [ obs_cand "G11" ]))

(* --- scan integrity and the risk contract (satellite 3) ----------------- *)

(* Scan insertion on a TPI-modified netlist: the inserted chain (original
   flops then observe cells, declaration order) passes the S001-S003
   integrity rules — no broken entries, duplicates or missing cells. *)
let test_integrity_preserved () =
  List.iter
    (fun c ->
      let cands = Candidate.mine ~limit:2 c in
      let c' = Transform.apply c cands in
      let inserted = (Scan_insert.insert c').Scan_insert.circuit in
      List.iter
        (fun (d : Diagnostic.t) ->
          match d.rule with
          | "TVS-S001" | "TVS-S002" | "TVS-S003" ->
              Alcotest.failf "%s violated after scan insertion + TPI: %s" d.rule d.message
          | _ -> ())
        (Scan_lint.integrity c');
      Alcotest.(check (list string)) "inserted netlist chain is integral" []
        (List.filter_map
           (fun (d : Diagnostic.t) ->
             match d.rule with
             | "TVS-S001" | "TVS-S002" | "TVS-S003" -> Some d.message
             | _ -> None)
           (Scan_lint.integrity inserted)))
    [ s27 (); s444 () ]

(* The matched-emitted-window contract (DESIGN.md §13): with k observe
   cells appended, the risk table of the modified circuit at shift s + k
   shows every targeted position's risk strictly decreased, and no
   original position's risk increased. *)
let test_risk_strictly_decreases () =
  List.iter
    (fun (c, s) ->
      let cands = Candidate.mine ~shift:s ~limit:2 c in
      Alcotest.(check bool) "mining found candidates" true (cands <> []);
      let targets = List.map (fun (x : Candidate.t) -> Circuit.find_net c x.net) cands in
      let excl = Scan_lint.exclusive_nets ~s c in
      let c' = Transform.apply c cands in
      let k = Transform.observe_cells cands in
      let before = Scan_lint.risk_table ~s c in
      let after = Scan_lint.risk_table ~s:(s + k) c' in
      Array.iteri
        (fun i (row : Scan_lint.risk_row) ->
          let row' = after.(i) in
          Alcotest.(check string) "position keeps its cell" row.cell row'.cell;
          if not row.emitted then begin
            Alcotest.(check bool) "original emitted cut preserved" row.emitted row'.emitted;
            if row'.risk > row.risk then
              Alcotest.failf "position %d (%s): risk rose %d -> %d" i row.cell row.risk
                row'.risk;
            (* Targeted = this position's exclusive support holds a tapped
               net; those must strictly improve. *)
            if List.exists (fun t -> List.mem t excl.(i)) targets && row'.risk >= row.risk
            then
              Alcotest.failf "targeted position %d (%s): risk %d not strictly below %d" i
                row.cell row'.risk row.risk
          end)
        before;
      (* Every appended observe cell sits in the emitted window: risk 0. *)
      for i = Array.length before to Array.length after - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "observe cell %s emitted" after.(i).Scan_lint.cell)
          true after.(i).Scan_lint.emitted
      done)
    [ (s27 (), 1); (s444 (), 5) ]

(* --- the study ---------------------------------------------------------- *)

let test_study_converts () =
  (* The acceptance bar: on both bundled circuits a small study converts at
     least one statically hidden fault, and the dynamic replay confirms at
     least one conversion is caught by the final circuit's own test set. *)
  List.iter
    (fun (c, points) ->
      let r = Tpi.run ~options:{ Tpi.default_options with Tpi.points } c in
      Alcotest.(check bool) "selected at least one point" true (r.Tpi.points <> []);
      Alcotest.(check bool) "converted at least one hidden net" true (r.Tpi.converted <> []);
      Alcotest.(check int) "two stem faults per converted net"
        (2 * List.length r.Tpi.converted)
        r.Tpi.converted_faults;
      Alcotest.(check bool) "at least one conversion caught" true (r.Tpi.caught >= 1);
      Alcotest.(check bool) "caught within bounds" true (r.Tpi.caught <= r.Tpi.converted_faults);
      (* Per-point deltas chain from base to final. *)
      let final = Tpi.final_summary r in
      let last = List.nth r.Tpi.points (List.length r.Tpi.points - 1) in
      Alcotest.(check bool) "final summary is the last point's" true
        (final = last.Tpi.summary))
    [ (s27 (), 2); (s444 (), 3) ]

let test_study_deterministic () =
  let ascii jobs =
    Tvs_util.Pool.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Tvs_util.Pool.set_default_jobs 1)
      (fun () -> Tpi.to_ascii (Tpi.run (s27 ())))
  in
  Alcotest.(check string) "study is jobs-invariant" (ascii 1) (ascii 4)

let test_study_cached () =
  let dir = fresh_dir () in
  Experiments.set_cache (Some (Result.get_ok (Cache.open_dir dir)));
  Fun.protect
    ~finally:(fun () -> Experiments.set_cache None)
    (fun () ->
      let c = s27 () in
      let r1 = Tpi.run c in
      let cache = Option.get (Experiments.cache ()) in
      Alcotest.(check bool) "study stored under TPIS" true
        (Sys.file_exists
           (Cache.entry_path cache ~kind:Tpi.study_kind ~key:(Tpi.study_key c)));
      let r2 = Tpi.run c in
      Alcotest.(check bool) "cached study equals the computed one" true (r1 = r2);
      Alcotest.(check string) "cached rendering byte-identical" (Tpi.to_ascii r1)
        (Tpi.to_ascii r2))

let test_study_rejects_combinational () =
  let b = Circuit.Builder.create "comb" in
  let a = Circuit.Builder.input b "a" in
  Circuit.Builder.mark_output b (Circuit.Builder.gate b ~name:"y" Gate.Not [ a ]);
  let c = Circuit.Builder.finish b in
  match Tpi.run c with
  | exception Circuit.Build_error _ -> ()
  | (_ : Tpi.result) -> Alcotest.fail "combinational circuit accepted"

let test_result_codec () =
  let r = Tpi.run (s27 ()) in
  let w = Wire.writer () in
  Tpi.encode_result w r;
  let r' = Tpi.decode_result (Wire.reader (Wire.contents w)) in
  Alcotest.(check bool) "wire round-trip preserves the result" true (r = r');
  (* Truncated payloads raise Wire.Error, never a crash. *)
  let bytes = Wire.contents w in
  match Tpi.decode_result (Wire.reader (String.sub bytes 0 (String.length bytes / 2))) with
  | exception Wire.Error _ -> ()
  | (_ : Tpi.result) -> Alcotest.fail "truncated payload decoded"

let test_study_json () =
  let r = Tpi.run (s27 ()) in
  let doc =
    match Json.parse (Tpi.to_json_string r) with
    | Ok d -> d
    | Error m -> Alcotest.failf "tpi json does not re-parse: %s" m
  in
  Alcotest.(check (option bool)) "schema stamped" (Some true)
    (Option.map (fun j -> j = Json.Int Tpi.schema_version) (Json.member "schema" doc));
  List.iter
    (fun k ->
      if Json.member k doc = None then Alcotest.failf "member %S missing from tpi json" k)
    [
      "circuit"; "chain_len"; "shift"; "candidates"; "base"; "points"; "final"; "converted";
      "caught"; "converted_faults";
    ]

(* --- the lint shift sweep (satellite 1) ---------------------------------- *)

let test_lint_sweep () =
  let options = { Lint.default_options with Lint.sat_faults = 0; sweep = [ 2; 3; 2; 99 ] } in
  let r = Lint.run ~options (s27 ()) in
  (* s27 has 3 flops: 99 clamps to 3, the duplicate 2 drops. *)
  Alcotest.(check (list int)) "sweep shifts, clamped and deduped" [ 2; 3 ]
    (List.map fst r.Lint.sweep);
  List.iter
    (fun (s, table) ->
      Alcotest.(check int) "one row per cell" (Array.length r.Lint.risk) (Array.length table);
      Array.iter
        (fun (row : Scan_lint.risk_row) ->
          if row.emitted && row.risk <> 0 then
            Alcotest.failf "sweep shift %d: emitted position %d has risk %d" s row.position
              row.risk)
        table)
    r.Lint.sweep;
  (* Larger shifts emit more of the chain. *)
  let retained table =
    Array.fold_left
      (fun acc (row : Scan_lint.risk_row) -> if row.emitted then acc else acc + 1)
      0 table
  in
  Alcotest.(check bool) "monotone emitted windows" true
    (retained r.Lint.risk > retained (List.assoc 2 r.Lint.sweep)
    && retained (List.assoc 2 r.Lint.sweep) > retained (List.assoc 3 r.Lint.sweep));
  (* JSON carries the sweep; the wire codec round-trips it. *)
  (match Json.parse (Lint.to_json_string r) with
  | Error m -> Alcotest.failf "lint json does not re-parse: %s" m
  | Ok doc -> (
      Alcotest.(check (option bool)) "schema is 2" (Some true)
        (Option.map (fun j -> j = Json.Int Lint.schema_version) (Json.member "schema" doc));
      match Json.member "risk_sweep" doc with
      | Some (Json.Arr entries) ->
          Alcotest.(check int) "risk_sweep has one entry per sweep shift" 2
            (List.length entries)
      | _ -> Alcotest.fail "risk_sweep missing"));
  let w = Wire.writer () in
  Lint.encode_report w r;
  let r' = Lint.decode_report (Wire.reader (Wire.contents w)) in
  Alcotest.(check bool) "report wire round-trip keeps the sweep" true (r = r');
  (* ASCII renders one table per shift: the primary plus the sweep. *)
  let ascii = Lint.to_ascii r in
  let tables = ref 0 in
  String.split_on_char '\n' ascii
  |> List.iter (fun l ->
         if String.length l >= 17 && String.sub l 0 17 = "hidden-fault risk" then incr tables);
  Alcotest.(check int) "one ascii table per shift" 3 !tables

(* --- report schema (satellite 5; cec section added by the v3 bump) ------- *)

let test_report_schema_bump () =
  Alcotest.(check int) "report schema is 3" 3 Report.schema_version;
  let entry =
    {
      Report.tpi_circuit = "s27";
      points = 1;
      converted_faults = 2;
      caught = 2;
      d_coverage = 0.0;
      dm = 0.84;
      dt = 0.35;
    }
  in
  let cec_entry =
    {
      Report.cec_circuit = "s27";
      transform = "scan";
      verdict = "equivalent";
      points = 4;
      sat_calls = 3;
      decisions = 7;
    }
  in
  let report =
    Report.make ~tpi:[ entry ] ~cec:[ cec_entry ] ~jobs:1
      ~runs:[ { Report.artifact = "tpi"; circuit = None; wall_ns = 1e9; benchmarks = [] } ]
      ~metrics:[] ()
  in
  (match Report.of_json (Report.to_json report) with
  | Error m -> Alcotest.failf "v3 report does not round-trip: %s" m
  | Ok r ->
      Alcotest.(check bool) "tpi section survives" true (r.Report.tpi = [ entry ]);
      Alcotest.(check bool) "cec section survives" true (r.Report.cec = [ cec_entry ]));
  (* A v1 document (no tpi or cec member) still parses, with empty sections. *)
  let v1 =
    {|{"schema_version":1,"tool":"tvs-bench","scale":null,"jobs":1,"git_rev":null,"runs":[],"metrics":{}}|}
  in
  (match Report.of_json v1 with
  | Error m -> Alcotest.failf "v1 report rejected: %s" m
  | Ok r ->
      Alcotest.(check bool) "v1 parses with empty tpi" true (r.Report.tpi = []);
      Alcotest.(check bool) "v1 parses with empty cec" true (r.Report.cec = []));
  (* A v2 document (tpi but no cec member) parses with an empty cec section. *)
  let v2 =
    {|{"schema_version":2,"tool":"tvs-bench","scale":null,"jobs":1,"git_rev":null,"runs":[],"tpi":[],"metrics":{}}|}
  in
  (match Report.of_json v2 with
  | Error m -> Alcotest.failf "v2 report rejected: %s" m
  | Ok r -> Alcotest.(check bool) "v2 parses with empty cec" true (r.Report.cec = []));
  (* An out-of-range caught count is invalid, and so is a bad verdict. *)
  (let bad = Report.to_json { report with Report.tpi = [ { entry with Report.caught = 3 } ] } in
   match Report.of_json bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "caught > converted_faults accepted");
  let bad =
    Report.to_json { report with Report.cec = [ { cec_entry with Report.verdict = "maybe" } ] }
  in
  match Report.of_json bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown cec verdict accepted"

(* --- Verilog round-trip over TPI-modified circuits (satellite 2) --------- *)

(* Same family as test_verilog: net names are already legal Verilog
   identifiers (as are the tpi_ names), so round-trips are exact. *)
let tiny_circuit i =
  let styles = [| Profiles.Balanced; Profiles.Shallow; Profiles.Deep |] in
  Synth.generate
    {
      Profiles.name = Printf.sprintf "tprop%d" i;
      npi = 2 + (i mod 5);
      npo = 1 + (i mod 4);
      nff = 1 + (i mod 6);
      ngates = 20 + (5 * (i mod 11));
      style = styles.(i mod 3);
    }

let isomorphic a b =
  let statement_lines c =
    String.split_on_char '\n' (Bench_format.to_string c)
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.sort compare
  in
  Circuit.num_nets a = Circuit.num_nets b
  && Circuit.num_inputs a = Circuit.num_inputs b
  && Circuit.num_flops a = Circuit.num_flops b
  && Circuit.num_outputs a = Circuit.num_outputs b
  && statement_lines a = statement_lines b

(* Insert points (mined when available, else a synthetic observe cell on
   the first flop's Q) so every case exercises a modified netlist. *)
let with_points i =
  let c = tiny_circuit i in
  let cands =
    match Candidate.mine ~po_taps:(i mod 2 = 0) ~limit:2 c with
    | [] -> [ obs_cand (Circuit.net_name c (Circuit.flops c).(0)) ]
    | l -> l
  in
  Transform.apply c cands

let qcheck_tpi_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog round-trip parse(emit tpi(c)) = tpi(c)" ~count:30
    QCheck.(int_range 0 64)
    (fun i ->
      let c' = with_points i in
      let e = Emitter.emit c' in
      isomorphic c' (Frontend.parse_string ~name:(Circuit.name c') e.Emitter.text))

let qcheck_tpi_scan_roundtrip =
  QCheck.Test.make ~name:"scan emission of tpi netlists re-parses functionally" ~count:20
    QCheck.(int_range 0 64)
    (fun i ->
      let c' = with_points i in
      let e = Emitter.emit ~scan:true c' in
      let c'' = Frontend.parse_string e.Emitter.text in
      (* scan_in/scan_en vanish; `assign scan_out = <tail q>` survives as
         one BUF driving one extra output — observe cells included, since
         they are ordinary chain cells to the emitter. *)
      Circuit.num_inputs c'' = Circuit.num_inputs c'
      && Circuit.num_flops c'' = Circuit.num_flops c'
      && Circuit.num_outputs c'' = Circuit.num_outputs c' + 1
      && Circuit.num_nets c'' = Circuit.num_nets c' + 1)

let qcheck_transform_preserves_integrity =
  QCheck.Test.make ~name:"tpi netlists keep scan integrity" ~count:30
    QCheck.(int_range 0 64)
    (fun i ->
      let c' = with_points i in
      List.for_all
        (fun (d : Diagnostic.t) ->
          match d.rule with "TVS-S001" | "TVS-S002" | "TVS-S003" -> false | _ -> true)
        (Scan_lint.integrity c'))

let () =
  Alcotest.run "tpi"
    [
      ( "candidates",
        [ Alcotest.test_case "mining is ranked and deterministic" `Quick test_mine_ranked ] );
      ( "transform",
        [
          Alcotest.test_case "observe cells extend the chain" `Quick test_transform_observe;
          Alcotest.test_case "po taps and control points" `Quick
            test_transform_po_tap_and_controls;
          Alcotest.test_case "rejects bad candidate sets" `Quick test_transform_rejects;
          QCheck_alcotest.to_alcotest qcheck_transform_preserves_integrity;
        ] );
      ( "risk contract",
        [
          Alcotest.test_case "scan integrity preserved" `Quick test_integrity_preserved;
          Alcotest.test_case "targeted risk strictly decreases" `Quick
            test_risk_strictly_decreases;
        ] );
      ( "study",
        [
          Alcotest.test_case "converts hidden faults on s27 and s444" `Quick
            test_study_converts;
          Alcotest.test_case "jobs-invariant" `Quick test_study_deterministic;
          Alcotest.test_case "memoized through the cache" `Quick test_study_cached;
          Alcotest.test_case "rejects circuits without flops" `Quick
            test_study_rejects_combinational;
          Alcotest.test_case "result wire codec" `Quick test_result_codec;
          Alcotest.test_case "json document" `Quick test_study_json;
        ] );
      ( "lint sweep",
        [ Alcotest.test_case "multi-shift risk tables" `Quick test_lint_sweep ] );
      ( "report",
        [ Alcotest.test_case "schema v3 with tpi and cec sections" `Quick test_report_schema_bump ] );
      ( "verilog",
        [
          QCheck_alcotest.to_alcotest qcheck_tpi_verilog_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_tpi_scan_roundtrip;
        ] );
    ]
