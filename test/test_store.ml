(* The persistence layer: frame codec (incl. crash-window damage), content
   digests, checkpoint round-trips, in-process resume equivalence, and the
   content-addressed cache. *)

module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Bitvec = Tvs_logic.Bitvec
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Podem = Tvs_atpg.Podem
module Xor_scheme = Tvs_scan.Xor_scheme
module Baseline = Tvs_core.Baseline
module Engine = Tvs_core.Engine
module Policy = Tvs_core.Policy
module Wire = Tvs_util.Wire
module Rng = Tvs_util.Rng
module Codec = Tvs_store.Codec
module Digest = Tvs_store.Digest
module Checkpoint = Tvs_store.Checkpoint
module Cache = Tvs_store.Cache

let s27 = Tvs_circuits.S27.circuit ()

let tiny i =
  Tvs_circuits.Synth.generate
    {
      Tvs_circuits.Profiles.name = Printf.sprintf "store-%d" i;
      npi = 3 + (i mod 3);
      npo = 2;
      nff = 5 + (i mod 4);
      ngates = 30 + (5 * i);
      style = Tvs_circuits.Profiles.Balanced;
    }

(* --- frame codec ---------------------------------------------------- *)

let sample_frame () =
  Codec.encode ~kind:"TEST" (fun w ->
      Wire.write_varint w 12345;
      Wire.write_string w "hello";
      Wire.write_bool_array w [| true; false; true; true; false; true; false; false; true |])

let decode_sample s =
  Codec.decode ~kind:"TEST" s (fun r ->
      let n = Wire.read_varint r in
      let msg = Wire.read_string r in
      let bits = Wire.read_bool_array r in
      (n, msg, bits))

let test_frame_roundtrip () =
  match decode_sample (sample_frame ()) with
  | Ok (n, msg, bits) ->
      Alcotest.(check int) "varint" 12345 n;
      Alcotest.(check string) "string" "hello" msg;
      Alcotest.(check int) "bits" 9 (Array.length bits);
      Alcotest.(check bool) "bit 3" true bits.(3)
  | Error e -> Alcotest.failf "frame did not round-trip: %s" (Codec.error_to_string e)

let test_frame_kind_and_magic () =
  let s = sample_frame () in
  (match Codec.decode ~kind:"OTHR" s (fun _ -> ()) with
  | Error (Codec.Bad_kind { expected = "OTHR"; got = "TEST" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
  | Ok () -> Alcotest.fail "kind mismatch accepted");
  let bad_magic = "XYZ\x02" ^ String.sub s 4 (String.length s - 4) in
  match decode_sample bad_magic with
  | Error Codec.Bad_magic -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "bad magic accepted"

let test_frame_bad_version () =
  let s = Bytes.of_string (sample_frame ()) in
  Bytes.set s 8 (Char.chr 99);
  match decode_sample (Bytes.to_string s) with
  | Error (Codec.Bad_version 99) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "future schema version accepted"

(* Every possible truncation surfaces as a typed error — never an exception,
   never a bogus [Ok]. *)
let test_frame_truncation () =
  let s = sample_frame () in
  for len = 0 to String.length s - 1 do
    match decode_sample (String.sub s 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | Error _ -> ()
    | exception e ->
        Alcotest.failf "truncation to %d bytes raised %s" len (Printexc.to_string e)
  done

(* Every single-bit flip anywhere in the frame is detected. *)
let test_frame_bit_flips () =
  let s = sample_frame () in
  for pos = 0 to String.length s - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code s.[pos] lxor (1 lsl bit)));
      match decode_sample (Bytes.to_string b) with
      | Ok _ -> Alcotest.failf "flip at byte %d bit %d undetected" pos bit
      | Error _ -> ()
      | exception e ->
          Alcotest.failf "flip at byte %d bit %d raised %s" pos bit (Printexc.to_string e)
    done
  done

let test_frame_trailing_garbage () =
  match decode_sample (sample_frame () ^ "x") with
  | Error (Codec.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

(* --- domain codec instances ----------------------------------------- *)

let encode_to_string f =
  let w = Wire.writer () in
  f w;
  Wire.contents w

let test_circuit_codec_roundtrip () =
  List.iter
    (fun c ->
      let bytes = encode_to_string (fun w -> Circuit.encode w c) in
      let c' =
        match Wire.decode bytes Circuit.decode with
        | Ok c' -> c'
        | Error msg -> Alcotest.failf "%s: decode failed: %s" (Circuit.name c) msg
      in
      Alcotest.(check string) "name" (Circuit.name c) (Circuit.name c');
      Alcotest.(check int) "nets" (Circuit.num_nets c) (Circuit.num_nets c');
      (* Net numbering is preserved exactly, so both the canonical encoding
         and the .bench rendering must agree byte for byte. *)
      Alcotest.(check string) "re-encoding" bytes
        (encode_to_string (fun w -> Circuit.encode w c'));
      Alcotest.(check string) "bench text" (Bench_format.to_string c)
        (Bench_format.to_string c'))
    [ s27; tiny 0; tiny 3; Tvs_circuits.Fig1.circuit () ]

let test_fault_and_bitvec_codec_roundtrip () =
  let faults = Fault_gen.collapsed s27 in
  let bytes = encode_to_string (fun w -> Wire.write_array Fault.encode w faults) in
  (match Wire.decode bytes (Wire.read_array Fault.decode) with
  | Ok faults' ->
      Alcotest.(check bool) "fault array round-trips" true (faults = faults')
  | Error msg -> Alcotest.failf "fault decode failed: %s" msg);
  let rng = Rng.of_string "store:bitvec" in
  let bits = Array.init 131 (fun _ -> Rng.bool rng) in
  let v = Bitvec.of_bool_array bits in
  let bytes = encode_to_string (fun w -> Bitvec.encode w v) in
  match Wire.decode bytes Bitvec.decode with
  | Ok v' -> Alcotest.(check bool) "bitvec round-trips" true (Bitvec.equal v v')
  | Error msg -> Alcotest.failf "bitvec decode failed: %s" msg

(* --- digests --------------------------------------------------------- *)

let test_digest_circuit () =
  let d1 = Digest.circuit s27 in
  let d2 = Digest.circuit (Tvs_circuits.S27.circuit ()) in
  Alcotest.(check bool) "same construction, same digest" true (Digest.equal d1 d2);
  Alcotest.(check bool) "different circuit, different digest" false
    (Digest.equal d1 (Digest.circuit (tiny 0)));
  Alcotest.(check int) "hex width" 16 (String.length (Digest.to_hex d1))

let test_digest_config () =
  let base = Engine.default_config ~chain_len:9 in
  let d = Digest.config ~config:base ~label:"a" in
  Alcotest.(check bool) "jobs excluded" true
    (Digest.equal d (Digest.config ~config:{ base with Engine.jobs = Some 7 } ~label:"a"));
  Alcotest.(check bool) "label included" false
    (Digest.equal d (Digest.config ~config:base ~label:"b"));
  Alcotest.(check bool) "scheme included" false
    (Digest.equal d
       (Digest.config ~config:{ base with Engine.scheme = Xor_scheme.Vxor } ~label:"a"))

(* --- checkpoint / resume --------------------------------------------- *)

let prep () =
  let faults = Fault_gen.collapsed s27 in
  let ctx = Podem.create s27 in
  let baseline = Baseline.run ~rng:(Rng.of_string "core:baseline") ctx ~faults in
  (ctx, Baseline.testable_faults baseline faults, baseline)

let checkpoint_of snapshot =
  {
    Checkpoint.spec = "s27";
    scale = 1.0;
    scheme = Xor_scheme.Nxor;
    selection = Policy.Most_faults 5;
    shift = None;
    label = "store:eng";
    circuit_digest = Digest.circuit s27;
    config_digest = Digest.of_string "test-config";
    snapshot;
  }

(* An interrupted run, resumed from a frame-round-tripped snapshot, must
   reproduce the uninterrupted run's result exactly — including the RNG-
   dependent parts (candidate selection) and the full per-cycle log. *)
let test_resume_equals_uninterrupted () =
  let ctx, faults, baseline = prep () in
  let snaps = ref [] in
  let reference =
    Engine.run ~fallback:baseline.Baseline.vectors
      ~checkpoint:(1, fun s -> snaps := s :: !snaps)
      ~rng:(Rng.of_string "store:eng") ctx ~faults
  in
  let snaps = List.rev !snaps in
  Alcotest.(check bool) "run produced snapshots" true (snaps <> []);
  List.iteri
    (fun i snap ->
      (* Round-trip each snapshot through the on-disk form first: resume
         must work from the decoded bytes, not the in-memory object. *)
      let bytes =
        Codec.encode ~kind:Checkpoint.kind (fun w -> Checkpoint.encode w (checkpoint_of snap))
      in
      let ck =
        match Codec.decode ~kind:Checkpoint.kind bytes Checkpoint.decode with
        | Ok ck -> ck
        | Error e -> Alcotest.failf "checkpoint decode failed: %s" (Codec.error_to_string e)
      in
      let ctx2, faults2, baseline2 = prep () in
      let resumed =
        Engine.run ~fallback:baseline2.Baseline.vectors ~resume:ck.Checkpoint.snapshot
          ~rng:(Rng.of_string "store:eng") ctx2 ~faults:faults2
      in
      Alcotest.(check bool)
        (Printf.sprintf "resume from snapshot %d reproduces the reference" i)
        true (resumed = reference))
    snaps

let test_checkpoint_file_roundtrip_and_corruption () =
  let ctx, faults, baseline = prep () in
  let snaps = ref [] in
  ignore
    (Engine.run ~fallback:baseline.Baseline.vectors
       ~checkpoint:(1, fun s -> snaps := s :: !snaps)
       ~rng:(Rng.of_string "store:eng") ctx ~faults);
  let snap = List.hd !snaps in
  let path = Filename.temp_file "tvs-ck" ".tvs" in
  Checkpoint.save path (checkpoint_of snap);
  (match Checkpoint.load path with
  | Ok ck ->
      Alcotest.(check string) "spec survives" "s27" ck.Checkpoint.spec;
      Alcotest.(check bool) "digest survives" true
        (Digest.equal ck.Checkpoint.circuit_digest (Digest.circuit s27));
      Alcotest.(check bool) "snapshot survives" true (ck.Checkpoint.snapshot = snap)
  | Error e -> Alcotest.failf "load failed: %s" (Codec.error_to_string e));
  let bytes =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* Torn write: only half the frame made it to disk. *)
  let oc = open_out_bin path in
  output_string oc (String.sub bytes 0 (String.length bytes / 2));
  close_out oc;
  (match Checkpoint.load path with
  | Error (Codec.Truncated _) -> ()
  | Error e -> Alcotest.failf "wrong truncation error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "half-written checkpoint accepted");
  (* Bit rot in the payload. *)
  let flipped = Bytes.of_string bytes in
  let mid = String.length bytes / 2 in
  Bytes.set flipped mid (Char.chr (Char.code bytes.[mid] lxor 0x10));
  let oc = open_out_bin path in
  output_bytes oc flipped;
  close_out oc;
  (match Checkpoint.load path with
  | Error Codec.Crc_mismatch -> ()
  | Error e -> Alcotest.failf "wrong corruption error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "bit-flipped checkpoint accepted");
  Sys.remove path;
  match Checkpoint.load path with
  | Error (Codec.Io _) -> ()
  | Error e -> Alcotest.failf "wrong missing-file error: %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "missing file accepted"

(* --- cache ----------------------------------------------------------- *)

let fresh_cache_dir () =
  let path = Filename.temp_file "tvs-cache" "" in
  Sys.remove path;
  match Cache.open_dir path with
  | Ok c -> c
  | Error msg -> Alcotest.failf "open_dir failed: %s" msg

let test_cache_hit_miss_and_key_sensitivity () =
  let c = fresh_cache_dir () in
  let key = Digest.of_string "payload-key" in
  let h0 = Cache.hits () and m0 = Cache.misses () in
  Alcotest.(check bool) "cold lookup misses" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = None);
  Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 42);
  Alcotest.(check bool) "warm lookup hits" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = Some 42);
  Alcotest.(check int) "one hit counted" (h0 + 1) (Cache.hits ());
  Alcotest.(check int) "one miss counted" (m0 + 1) (Cache.misses ());
  (* A different digest or kind is a different entry entirely. *)
  Alcotest.(check bool) "other key misses" true
    (Cache.find c ~kind:"TEST" ~key:(Digest.of_string "other-key") Wire.read_varint = None);
  Alcotest.(check bool) "other kind misses" true
    (Cache.find c ~kind:"OTHR" ~key Wire.read_varint = None)

let test_cache_corrupt_entry_evicted () =
  let c = fresh_cache_dir () in
  let key = Digest.of_string "corrupt" in
  Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 7);
  let path = Cache.entry_path c ~kind:"TEST" ~key in
  let oc = open_out_bin path in
  output_string oc "garbage, not a frame";
  close_out oc;
  let e0 = Cache.evictions () in
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = None);
  Alcotest.(check int) "entry evicted" (e0 + 1) (Cache.evictions ());
  Alcotest.(check bool) "entry file deleted" false (Sys.file_exists path);
  (* The slot is usable again after eviction. *)
  Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 8);
  Alcotest.(check bool) "restored entry hits" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = Some 8)

(* Regression: a corrupt entry read twice evicts exactly once — the second
   read takes the missing-file path (one more miss, no double eviction),
   which is also what a reader that lost the unlink race to a concurrent
   process observes. And no [write_file_atomic] temp file may survive in the
   cache directory, even when the final rename fails. *)
let test_cache_corrupt_entry_read_twice () =
  let c = fresh_cache_dir () in
  let key = Digest.of_string "corrupt-twice" in
  Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 7);
  let path = Cache.entry_path c ~kind:"TEST" ~key in
  let oc = open_out_bin path in
  output_string oc "seeded corruption";
  close_out oc;
  let e0 = Cache.evictions () and m0 = Cache.misses () in
  Alcotest.(check bool) "first read misses" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = None);
  Alcotest.(check bool) "second read misses" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = None);
  Alcotest.(check int) "exactly one eviction" (e0 + 1) (Cache.evictions ());
  Alcotest.(check int) "both reads count as misses" (m0 + 2) (Cache.misses ());
  (* write_file_atomic temp names look like "<entry>.tmp.<pid>". *)
  let is_tmp f =
    let needle = ".tmp." in
    let nl = String.length needle and fl = String.length f in
    let rec go i = i + nl <= fl && (String.sub f i nl = needle || go (i + 1)) in
    go 0
  in
  let leftovers = List.filter is_tmp (Array.to_list (Sys.readdir (Cache.dir c))) in
  Alcotest.(check (list string)) "no temp files left behind" [] leftovers;
  (* Rename failure (here: the entry path is suddenly a directory) must
     propagate — and still not leave the temp file behind. *)
  Unix.mkdir path 0o755;
  (match Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 9) with
  | () -> Alcotest.fail "store into a directory-shadowed entry succeeded"
  | exception Sys_error _ -> ());
  let leftovers = List.filter is_tmp (Array.to_list (Sys.readdir (Cache.dir c))) in
  Alcotest.(check (list string)) "no temp files after failed rename" [] leftovers

(* --- cross-process contention ---------------------------------------- *)

(* Children must not replay the parent's buffered output or at_exit hooks
   (alcotest owns both), so they leave through Unix._exit with a bare
   status code. *)
let fork_child f =
  match Unix.fork () with
  | 0 -> (
      match f () with code -> Unix._exit code | exception _ -> Unix._exit 99)
  | pid -> pid

let wait_status pid =
  match Unix.waitpid [] pid with _, Unix.WEXITED c -> c | _ -> 98

let is_tmp_file f =
  let needle = ".tmp." in
  let nl = String.length needle and fl = String.length f in
  let rec go i = i + nl <= fl && (String.sub f i nl = needle || go (i + 1)) in
  go 0

(* The serve daemon and any number of one-shot CLI runs share one cache
   directory, so store/find must be safe across processes, not just across
   domains: a reader racing a writer on the same key sees either absence or
   one complete value — never a torn frame (the CRC turns a torn read into
   an eviction, and the entry was stored moments ago) — and the temp+rename
   protocol leaves no .tmp.<pid> litter behind. *)
let test_cache_cross_process_contention () =
  let c = fresh_cache_dir () in
  let key = Digest.of_string "contended-key" in
  let rounds = 300 in
  let writer =
    fork_child (fun () ->
        for _ = 1 to rounds do
          Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 777)
        done;
        0)
  in
  let reader =
    fork_child (fun () ->
        (* The fork inherits the parent's counter shards, so only the delta
           accumulated by this child's own reads matters. *)
        let e0 = Cache.evictions () in
        let bad = ref 0 in
        for _ = 1 to rounds do
          match Cache.find c ~kind:"TEST" ~key Wire.read_varint with
          | None | Some 777 -> ()
          | Some _ -> incr bad
        done;
        if !bad > 0 then 1 else if Cache.evictions () > e0 then 2 else 0)
  in
  Alcotest.(check int) "writer exits cleanly" 0 (wait_status writer);
  Alcotest.(check int) "reader saw only absent-or-complete values" 0 (wait_status reader);
  let leftovers = List.filter is_tmp_file (Array.to_list (Sys.readdir (Cache.dir c))) in
  Alcotest.(check (list string)) "no temp files leaked" [] leftovers;
  Alcotest.(check bool) "final entry intact" true
    (Cache.find c ~kind:"TEST" ~key Wire.read_varint = Some 777)

(* Two processes racing to evict the same corrupt entry: unlink is atomic,
   so exactly one of them may count the eviction — the loser takes the
   missing-file miss path. The children report their local eviction delta
   through their exit status. *)
let test_cache_cross_process_eviction_once () =
  let c = fresh_cache_dir () in
  let key = Digest.of_string "races-to-evict" in
  Cache.store c ~kind:"TEST" ~key (fun w -> Wire.write_varint w 7);
  let path = Cache.entry_path c ~kind:"TEST" ~key in
  let oc = open_out_bin path in
  output_string oc "seeded corruption";
  close_out oc;
  let racer () =
    fork_child (fun () ->
        let e0 = Cache.evictions () in
        if Cache.find c ~kind:"TEST" ~key Wire.read_varint <> None then 97
        else Cache.evictions () - e0)
  in
  let a = racer () and b = racer () in
  let ea = wait_status a and eb = wait_status b in
  Alcotest.(check bool) "both read a miss" true (ea < 90 && eb < 90);
  Alcotest.(check int) "eviction counted exactly once across processes" 1 (ea + eb);
  Alcotest.(check bool) "entry gone" false (Sys.file_exists path)

let test_cache_open_dir_rejects_file () =
  let path = Filename.temp_file "tvs-notdir" "" in
  (match Cache.open_dir path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened a plain file as a cache directory");
  Sys.remove path

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "kind and magic checked" `Quick test_frame_kind_and_magic;
          Alcotest.test_case "future version rejected" `Quick test_frame_bad_version;
          Alcotest.test_case "every truncation detected" `Quick test_frame_truncation;
          Alcotest.test_case "every bit flip detected" `Quick test_frame_bit_flips;
          Alcotest.test_case "trailing garbage rejected" `Quick test_frame_trailing_garbage;
          Alcotest.test_case "circuit codec round-trip" `Quick test_circuit_codec_roundtrip;
          Alcotest.test_case "fault and bitvec round-trip" `Quick
            test_fault_and_bitvec_codec_roundtrip;
        ] );
      ( "digest",
        [
          Alcotest.test_case "circuit digests" `Quick test_digest_circuit;
          Alcotest.test_case "config digests" `Quick test_digest_config;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume equals uninterrupted" `Quick test_resume_equals_uninterrupted;
          Alcotest.test_case "file round-trip and corruption" `Quick
            test_checkpoint_file_roundtrip_and_corruption;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit, miss and key sensitivity" `Quick
            test_cache_hit_miss_and_key_sensitivity;
          Alcotest.test_case "corrupt entry evicted" `Quick test_cache_corrupt_entry_evicted;
          Alcotest.test_case "corrupt entry read twice evicts once" `Quick
            test_cache_corrupt_entry_read_twice;
          Alcotest.test_case "cross-process store/find contention" `Quick
            test_cache_cross_process_contention;
          Alcotest.test_case "cross-process eviction counted once" `Quick
            test_cache_cross_process_eviction_once;
          Alcotest.test_case "open_dir rejects a file" `Quick test_cache_open_dir_rejects_file;
        ] );
    ]
