(* validate_report — CI gate for bench's --out JSON.

     validate_report FILE                 validate + print the ASCII view
     validate_report --metrics-equal A B  also require identical metrics

   Exit codes: 0 valid, 1 invalid (schema or metrics mismatch), 2 usage or
   unreadable file. The metrics comparison is key-order-insensitive
   (canonicalized via Json.sort_keys) but value-exact: it is the CI check
   that a --jobs 1 and a --jobs 4 run produced bit-identical stable
   metrics. *)

module Report = Tvs_obs.Report
module Json = Tvs_obs.Json

let usage () =
  prerr_endline "usage: validate_report FILE | validate_report --metrics-equal FILE FILE";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg ->
      Printf.eprintf "validate_report: %s\n" msg;
      exit 2

let load path =
  let contents = read_file path in
  match Report.of_json contents with
  | Ok r -> r
  | Error msg ->
      Printf.eprintf "validate_report: %s: invalid report: %s\n" path msg;
      exit 1

let metrics_json path contents =
  match Json.parse contents with
  | Error msg ->
      Printf.eprintf "validate_report: %s: %s\n" path msg;
      exit 1
  | Ok doc -> (
      match Json.member "metrics" doc with
      | Some m -> Json.sort_keys m
      | None ->
          Printf.eprintf "validate_report: %s: no metrics member\n" path;
          exit 1)

let () =
  match Array.to_list Sys.argv with
  | [ _; file ] ->
      let r = load file in
      print_string (Report.to_table r);
      Printf.printf "%s: valid (schema v%d)\n" file r.Report.version
  | [ _; "--metrics-equal"; a; b ] ->
      let ra = load a and rb = load b in
      ignore ra;
      ignore rb;
      let ma = metrics_json a (read_file a) and mb = metrics_json b (read_file b) in
      if ma = mb then Printf.printf "%s and %s: metrics identical\n" a b
      else begin
        Printf.eprintf "validate_report: metrics differ between %s and %s\n" a b;
        exit 1
      end
  | _ -> usage ()
