(* validate_report — CI gate for bench's --out JSON and tvs lint's JSON.

     validate_report FILE                 validate + print the ASCII view
     validate_report --metrics-equal A B  also require identical metrics
     validate_report --lint FILE          validate a `tvs lint --format json` document
     validate_report --tpi FILE           validate a `tvs tpi --format json` document
     validate_report --cec FILE [FILE]    validate a `tvs equiv --format json` document;
                                          with two files, also require them byte-identical
                                          (the --jobs invariance gate)

   Exit codes: 0 valid, 1 invalid (schema or metrics mismatch), 2 usage or
   unreadable file. The metrics comparison is key-order-insensitive
   (canonicalized via Json.sort_keys) but value-exact: it is the CI check
   that a --jobs 1 and a --jobs 4 run produced bit-identical stable
   metrics. The lint check is deliberately structural (no tvs_lint
   dependency): it enforces the schema documented in Tvs_lint.Lint.to_json
   so a drive-by format change breaks CI, not downstream scripts. *)

module Report = Tvs_obs.Report
module Json = Tvs_obs.Json

let usage () =
  prerr_endline
    "usage: validate_report FILE | validate_report --metrics-equal FILE FILE | validate_report \
     --lint FILE | validate_report --tpi FILE | validate_report --cec FILE [FILE]";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg ->
      Printf.eprintf "validate_report: %s\n" msg;
      exit 2

let load path =
  let contents = read_file path in
  match Report.of_json contents with
  | Ok r -> r
  | Error msg ->
      Printf.eprintf "validate_report: %s: invalid report: %s\n" path msg;
      exit 1

let metrics_json path contents =
  match Json.parse contents with
  | Error msg ->
      Printf.eprintf "validate_report: %s: %s\n" path msg;
      exit 1
  | Ok doc -> (
      match Json.member "metrics" doc with
      | Some m -> Json.sort_keys m
      | None ->
          Printf.eprintf "validate_report: %s: no metrics member\n" path;
          exit 1)

(* The lint JSON schema (see Tvs_lint.Lint.to_json). Validation is
   structural and value-checked: summary counts must equal a recount of the
   diagnostics array, emitted scan positions must carry zero risk, and
   positions must be dense and in order. *)
let lint_validate path doc =
  let fail msg =
    Printf.eprintf "validate_report: %s: invalid lint report: %s\n" path msg;
    exit 1
  in
  let get k o =
    match Json.member k o with Some v -> v | None -> fail (Printf.sprintf "missing member %S" k)
  in
  let int_ge lo k o =
    match get k o with
    | Json.Int n when n >= lo -> n
    | Json.Int n -> fail (Printf.sprintf "%s = %d, expected >= %d" k n lo)
    | _ -> fail (k ^ " is not an integer")
  in
  let str k o = match get k o with Json.Str s -> s | _ -> fail (k ^ " is not a string") in
  let rule_ok s =
    let digit c = c >= '0' && c <= '9' in
    String.length s = 8
    && String.sub s 0 4 = "TVS-"
    && (match s.[4] with 'A' .. 'Z' -> true | _ -> false)
    && digit s.[5] && digit s.[6] && digit s.[7]
  in
  (match get "schema" doc with
  | Json.Int 2 -> ()
  | Json.Int n -> fail (Printf.sprintf "unknown schema version %d" n)
  | _ -> fail "schema is not an integer");
  if str "circuit" doc = "" then fail "circuit name is empty";
  ignore (int_ge 0 "nets" doc);
  let diags =
    match get "diagnostics" doc with
    | Json.Arr l -> l
    | _ -> fail "diagnostics is not an array"
  in
  let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
  List.iteri
    (fun i d ->
      let fail msg = fail (Printf.sprintf "diagnostics[%d]: %s" i msg) in
      let rule = str "rule" d in
      if not (rule_ok rule) then fail (Printf.sprintf "rule %S does not match TVS-XNNN" rule);
      (match str "severity" d with
      | "error" -> incr errors
      | "warning" -> incr warnings
      | "info" -> incr infos
      | s -> fail (Printf.sprintf "unknown severity %S" s));
      if str "message" d = "" then fail "message is empty";
      (match get "nets" d with
      | Json.Arr nets ->
          List.iter (function Json.Str _ -> () | _ -> fail "nets contains a non-string") nets
      | _ -> fail "nets is not an array");
      (match get "line" d with
      | Json.Null -> ()
      | Json.Int n when n >= 1 -> ()
      | _ -> fail "line is neither null nor a positive integer");
      match get "hint" d with
      | Json.Null | Json.Str _ -> ()
      | _ -> fail "hint is neither null nor a string")
    diags;
  let summary = get "summary" doc in
  let check_count k counted =
    let n = int_ge 0 k summary in
    if n <> counted then
      fail (Printf.sprintf "summary.%s = %d but the diagnostics array has %d" k n counted)
  in
  check_count "errors" !errors;
  check_count "warnings" !warnings;
  check_count "infos" !infos;
  let risk_table label risk =
    let fail_t msg = fail (Printf.sprintf "%s: %s" label msg) in
    let shift = int_ge 0 "shift" risk in
    let positions =
      match get "positions" risk with
      | Json.Arr l -> l
      | _ -> fail_t "positions is not an array"
    in
    if positions <> [] && shift < 1 then fail_t "risk table present but shift < 1";
    List.iteri
      (fun i p ->
        let fail msg = fail_t (Printf.sprintf "positions[%d]: %s" i msg) in
        let pos = int_ge 0 "position" p in
        if pos <> i then fail (Printf.sprintf "position %d out of order" pos);
        if str "cell" p = "" then fail "cell name is empty";
        ignore (int_ge 0 "captures" p);
        ignore (int_ge 0 "exclusive" p);
        ignore (int_ge 0 "observability" p);
        let emitted =
          match get "emitted" p with
          | Json.Bool b -> b
          | _ -> fail "emitted is not a boolean"
        in
        let r = int_ge 0 "risk" p in
        if emitted && r <> 0 then fail (Printf.sprintf "emitted position has non-zero risk %d" r))
      positions;
    List.length positions
  in
  let positions = risk_table "risk" (get "risk" doc) in
  let sweep =
    match get "risk_sweep" doc with
    | Json.Arr l -> l
    | _ -> fail "risk_sweep is not an array"
  in
  List.iteri (fun i e -> ignore (risk_table (Printf.sprintf "risk_sweep[%d]" i) e)) sweep;
  Printf.printf "%s: valid lint report (%d diagnostics, %d scan positions, %d sweep tables)\n"
    path (List.length diags) positions (List.length sweep)

(* The tvs tpi JSON schema (see Tvs_tpi.Tpi.to_json). Structural like the
   lint check, plus the cross-field invariants: caught never exceeds the
   converted stem-fault count, which is exactly two per converted net. *)
let tpi_validate path doc =
  let fail msg =
    Printf.eprintf "validate_report: %s: invalid tpi report: %s\n" path msg;
    exit 1
  in
  let get k o =
    match Json.member k o with Some v -> v | None -> fail (Printf.sprintf "missing member %S" k)
  in
  let int_ge lo k o =
    match get k o with
    | Json.Int n when n >= lo -> n
    | Json.Int n -> fail (Printf.sprintf "%s = %d, expected >= %d" k n lo)
    | _ -> fail (k ^ " is not an integer")
  in
  let str k o = match get k o with Json.Str s -> s | _ -> fail (k ^ " is not a string") in
  let num k o =
    match get k o with
    | Json.Int n -> float_of_int n
    | Json.Float f -> f
    | _ -> fail (k ^ " is not a number")
  in
  let summary label s =
    let fail_s msg = fail (Printf.sprintf "%s: %s" label msg) in
    ignore (int_ge 0 "atv" s);
    ignore (int_ge 0 "tv" s);
    ignore (int_ge 0 "extra" s);
    List.iter (fun k -> ignore (num k s)) [ "m"; "t"; "coverage" ];
    let cov = num "coverage" s in
    if cov < 0.0 || cov > 1.0 then fail_s (Printf.sprintf "coverage %g outside [0, 1]" cov);
    ignore (int_ge 0 "peak_hidden" s)
  in
  (match get "schema" doc with
  | Json.Int 1 -> ()
  | Json.Int n -> fail (Printf.sprintf "unknown schema version %d" n)
  | _ -> fail "schema is not an integer");
  if str "circuit" doc = "" then fail "circuit name is empty";
  ignore (int_ge 1 "chain_len" doc);
  ignore (int_ge 1 "shift" doc);
  ignore (int_ge 0 "candidates" doc);
  summary "base" (get "base" doc);
  summary "final" (get "final" doc);
  let points =
    match get "points" doc with Json.Arr l -> l | _ -> fail "points is not an array"
  in
  List.iteri
    (fun i p ->
      let fail_p msg = fail (Printf.sprintf "points[%d]: %s" i msg) in
      (match str "kind" p with
      | "obs-cell" | "obs-po" | "ctl-1" | "ctl-0" -> ()
      | k -> fail_p (Printf.sprintf "unknown point kind %S" k));
      if str "net" p = "" then fail_p "net name is empty";
      ignore (int_ge 0 "score" p);
      ignore (int_ge 0 "hits" p);
      ignore (int_ge 0 "dmem" p);
      ignore (int_ge 0 "dtime" p);
      ignore (int_ge 0 "conversions" p);
      summary (Printf.sprintf "points[%d].summary" i) (get "summary" p);
      List.iter (fun k -> ignore (num k p)) [ "d_coverage"; "dm"; "dt" ])
    points;
  let converted =
    match get "converted" doc with
    | Json.Arr l ->
        List.map (function Json.Str s -> s | _ -> fail "converted contains a non-string") l
    | _ -> fail "converted is not an array"
  in
  let converted_faults = int_ge 0 "converted_faults" doc in
  if converted_faults <> 2 * List.length converted then
    fail
      (Printf.sprintf "converted_faults = %d but %d converted net(s) imply %d" converted_faults
         (List.length converted)
         (2 * List.length converted));
  let caught = int_ge 0 "caught" doc in
  if caught > converted_faults then
    fail (Printf.sprintf "caught %d exceeds converted_faults %d" caught converted_faults);
  Printf.printf "%s: valid tpi report (%d point(s), %d/%d converted fault(s) caught)\n" path
    (List.length points) caught converted_faults

(* The tvs equiv JSON schema (see Tvs_cec.Cec.to_json). Structural plus the
   cross-field invariants: points is the sum of the matched observation
   points, the counterexample is present exactly on an inequivalent verdict
   (with differing values), and the undecided list exactly on unknown. *)
let cec_validate path doc =
  let fail msg =
    Printf.eprintf "validate_report: %s: invalid cec report: %s\n" path msg;
    exit 1
  in
  let get k o =
    match Json.member k o with Some v -> v | None -> fail (Printf.sprintf "missing member %S" k)
  in
  let int_ge lo k o =
    match get k o with
    | Json.Int n when n >= lo -> n
    | Json.Int n -> fail (Printf.sprintf "%s = %d, expected >= %d" k n lo)
    | _ -> fail (k ^ " is not an integer")
  in
  let str k o = match get k o with Json.Str s -> s | _ -> fail (k ^ " is not a string") in
  let bit k o =
    match int_ge 0 k o with 0 -> false | 1 -> true | n -> fail (Printf.sprintf "%s = %d, expected 0 or 1" k n)
  in
  let bitstring label s =
    if s = "" then fail (label ^ " is empty (use \"-\" when there are no bits)");
    if s <> "-" then
      String.iter
        (function '0' | '1' -> () | c -> fail (Printf.sprintf "%s has non-bit char %C" label c))
        s
  in
  (match get "schema_version" doc with
  | Json.Int 1 -> ()
  | Json.Int n -> fail (Printf.sprintf "unknown schema version %d" n)
  | _ -> fail "schema_version is not an integer");
  if str "kind" doc <> "cec" then fail "kind is not \"cec\"";
  if str "left" doc = "" then fail "left circuit name is empty";
  if str "right" doc = "" then fail "right circuit name is empty";
  let verdict = str "verdict" doc in
  (match verdict with
  | "equivalent" | "inequivalent" | "unknown" -> ()
  | v -> fail (Printf.sprintf "unknown verdict %S" v));
  let matched = get "matched" doc in
  ignore (int_ge 0 "pi" matched);
  let ff = int_ge 0 "ff" matched and po = int_ge 0 "po" matched in
  let points = int_ge 0 "points" doc in
  if points <> po + ff then
    fail (Printf.sprintf "points = %d but matched po %d + ff %d imply %d" points po ff (po + ff));
  List.iter
    (fun k ->
      match get k doc with
      | Json.Arr l ->
          List.iter (function Json.Str _ -> () | _ -> fail (k ^ " contains a non-string")) l
      | _ -> fail (k ^ " is not an array"))
    [ "free_inputs"; "extra_outputs"; "extra_flops" ];
  (match get "ties" doc with
  | Json.Arr l ->
      List.iter
        (fun t ->
          if str "name" t = "" then fail "tie name is empty";
          ignore (bit "value" t))
        l
  | _ -> fail "ties is not an array");
  let sweep = get "sweep" doc in
  ignore (int_ge 0 "classes" sweep);
  ignore (int_ge 0 "proved" sweep);
  let sat = get "sat" doc in
  let calls = int_ge 0 "calls" sat in
  ignore (int_ge 0 "decisions" sat);
  ignore (int_ge 0 "propagations" sat);
  let undecided =
    match get "undecided" doc with
    | Json.Arr l -> List.length l
    | _ -> fail "undecided is not an array"
  in
  if (undecided > 0) <> (verdict = "unknown") then
    fail
      (Printf.sprintf "verdict %S inconsistent with %d undecided point(s)" verdict undecided);
  (match (get "counterexample" doc, verdict) with
  | Json.Null, ("equivalent" | "unknown") -> ()
  | Json.Null, _ -> fail "inequivalent verdict without a counterexample"
  | cex, "inequivalent" ->
      let point = get "point" cex in
      (match str "kind" point with
      | "po" | "capture" -> ()
      | k -> fail (Printf.sprintf "unknown point kind %S" k));
      if str "name" point = "" then fail "counterexample point name is empty";
      let side label =
        let s = get label cex in
        bitstring (label ^ ".pi") (str "pi" s);
        bitstring (label ^ ".state") (str "state" s);
        bit "value" s
      in
      if side "left" = side "right" then fail "counterexample values do not differ"
  | _, v -> fail (Printf.sprintf "counterexample present on a %S verdict" v));
  Printf.printf "%s: valid cec report (%s, %d point(s), %d sat call(s))\n" path verdict points
    calls

(* Jobs-invariance gate: two `tvs equiv --format json` runs of the same
   check (e.g. --jobs 1 and --jobs 4) must be byte-identical. *)
let cec_equal a b =
  let ca = read_file a and cb = read_file b in
  (match Json.parse ca with
  | Error msg ->
      Printf.eprintf "validate_report: %s: %s\n" a msg;
      exit 1
  | Ok doc -> cec_validate a doc);
  (match Json.parse cb with
  | Error msg ->
      Printf.eprintf "validate_report: %s: %s\n" b msg;
      exit 1
  | Ok doc -> cec_validate b doc);
  if ca = cb then Printf.printf "%s and %s: byte-identical\n" a b
  else begin
    Printf.eprintf "validate_report: cec reports differ between %s and %s\n" a b;
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | [ _; "--cec"; file ] -> (
      match Json.parse (read_file file) with
      | Error msg ->
          Printf.eprintf "validate_report: %s: %s\n" file msg;
          exit 1
      | Ok doc -> cec_validate file doc)
  | [ _; "--cec"; a; b ] -> cec_equal a b
  | [ _; "--tpi"; file ] -> (
      match Json.parse (read_file file) with
      | Error msg ->
          Printf.eprintf "validate_report: %s: %s\n" file msg;
          exit 1
      | Ok doc -> tpi_validate file doc)
  | [ _; "--lint"; file ] -> (
      match Json.parse (read_file file) with
      | Error msg ->
          Printf.eprintf "validate_report: %s: %s\n" file msg;
          exit 1
      | Ok doc -> lint_validate file doc)
  | [ _; file ] ->
      let r = load file in
      print_string (Report.to_table r);
      Printf.printf "%s: valid (schema v%d)\n" file r.Report.version
  | [ _; "--metrics-equal"; a; b ] ->
      let ra = load a and rb = load b in
      ignore ra;
      ignore rb;
      let ma = metrics_json a (read_file a) and mb = metrics_json b (read_file b) in
      if ma = mb then Printf.printf "%s and %s: metrics identical\n" a b
      else begin
        Printf.eprintf "validate_report: metrics differ between %s and %s\n" a b;
        exit 1
      end
  | _ -> usage ()
