(* Load generator and correctness checker for [tvs serve].

   Drives a running daemon over its JSONL protocol from N worker threads,
   each with its own connection, round-robining a mix of circuit specs.
   With --verify, the expected summary block is computed in-process once
   per unique spec (the same run_flow + render_summary path the CLI and the
   server use) and every response's "output" field must match it
   byte-for-byte — the serve contract under test.

   Single-shot modes for scripting:
     --one SPEC        submit one job, print its "output" bytes to stdout
     --one-bench FILE  same, submitting FILE's contents as an inline netlist
     --status          print the server's status event JSON
     --wait-idle       poll status until the queue is empty and nothing runs
     --shutdown        ask the server to drain and exit *)

module Protocol = Tvs_serve.Protocol
module Json = Tvs_obs.Json
module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Cli = Tvs_harness.Cli
module Circuit = Tvs_netlist.Circuit

let socket_path = ref ""
let port = ref 0
let count = ref 100
let concurrency = ref 8
let mix = ref "fig1,s27"
let verify = ref false
let one = ref ""
let one_bench = ref ""
let status = ref false
let wait_idle = ref false
let shutdown = ref false

let specs =
  [
    ("--socket", Arg.Set_string socket_path, "PATH Unix-domain socket of the server");
    ("--port", Arg.Set_int port, "PORT TCP port of the server (127.0.0.1)");
    ("--count", Arg.Set_int count, "N total jobs to submit (default 100)");
    ("--concurrency", Arg.Set_int concurrency, "N worker connections (default 8)");
    ("--mix", Arg.Set_string mix, "LIST comma-separated circuit specs (default fig1,s27)");
    ("--verify", Arg.Set verify, " byte-check every response against an in-process run");
    ("--one", Arg.Set_string one, "SPEC submit one job and print its output to stdout");
    ("--one-bench", Arg.Set_string one_bench, "FILE submit FILE as an inline netlist job");
    ("--status", Arg.Set status, " print the server's status event and exit");
    ("--wait-idle", Arg.Set wait_idle, " poll status until the server is idle");
    ("--shutdown", Arg.Set shutdown, " ask the server to drain its queue and exit");
  ]

let usage = "tvs_loadgen (--socket PATH | --port PORT) [options]"

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("tvs_loadgen: " ^ m); exit 2) fmt

let connect () =
  let fd, addr =
    if !socket_path <> "" then
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX !socket_path)
    else if !port > 0 then
      ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (Unix.inet_addr_loopback, !port) )
    else die "need --socket PATH or --port PORT"
  in
  (match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
      die "cannot connect: %s" (Unix.error_message err));
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let bool_field k j =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

(* Submit one job and block until its done/error event. The protocol
   guarantees lifecycle order per connection, and each worker keeps exactly
   one job in flight, so intermediate queued/started/checkpoint events can
   simply be skipped. *)
let submit_and_wait ic oc job =
  Protocol.write_frame oc (Protocol.json_of_job job);
  let rec wait () =
    match Protocol.read_frame ic with
    | None -> Error "server closed the connection"
    | Some (Error m) -> Error ("protocol error: " ^ m)
    | Some (Ok j) -> (
        match str_field "event" j with
        | Some "done" -> Ok j
        | Some "error" ->
            Error (Option.value ~default:"unspecified server error" (str_field "message" j))
        | _ -> wait ())
  in
  wait ()

let request_event verb want =
  let ic, oc = connect () in
  Protocol.write_frame oc (Protocol.json_of_request verb);
  let r =
    match Protocol.read_frame ic with
    | Some (Ok j) when str_field "event" j = Some want -> Ok j
    | Some (Ok j) -> Error ("unexpected reply: " ^ Json.to_string j)
    | Some (Error m) -> Error m
    | None -> Error "server closed the connection"
  in
  close_out_noerr oc;
  r

(* The reference result, produced exactly the way `tvs stitch SPEC` does. *)
let expected_for spec =
  match Cli.load_circuit spec with
  | Error m -> die "--verify: cannot build %S locally: %s" spec m
  | Ok c ->
      let prep = Prep.of_circuit c in
      let r = Experiments.run_flow ~label:"cli" prep in
      Experiments.render_summary ~circuit:(Circuit.name c)
        ~scheme:Tvs_scan.Xor_scheme.Nxor ~selection:(Tvs_core.Policy.Most_faults 5) r

let run_load () =
  let mix = List.filter (fun s -> s <> "") (String.split_on_char ',' !mix) in
  if mix = [] then die "--mix: empty spec list";
  if !count < 1 then die "--count must be >= 1";
  if !concurrency < 1 then die "--concurrency must be >= 1";
  let expected = Hashtbl.create 8 in
  if !verify then
    List.iter
      (fun spec ->
        if not (Hashtbl.mem expected spec) then Hashtbl.add expected spec (expected_for spec))
      mix;
  let ok = Atomic.make 0
  and cached = Atomic.make 0
  and failed = Atomic.make 0
  and mismatched = Atomic.make 0 in
  let job_of_index i = List.nth mix (i mod List.length mix) in
  let worker w =
    let ic, oc = connect () in
    let rec loop i =
      if i < !count then begin
        let spec = job_of_index i in
        (match submit_and_wait ic oc (Protocol.default_job (Protocol.Spec spec)) with
        | Error m ->
            Atomic.incr failed;
            Printf.eprintf "tvs_loadgen: job %d (%s) failed: %s\n%!" i spec m
        | Ok j ->
            Atomic.incr ok;
            if bool_field "cached" j = Some true then Atomic.incr cached;
            if !verify then begin
              let got = Option.value ~default:"" (str_field "output" j) in
              let want = Hashtbl.find expected spec in
              if got <> want then begin
                Atomic.incr mismatched;
                Printf.eprintf
                  "tvs_loadgen: job %d (%s): response differs from one-shot CLI output\n--- \
                   expected ---\n%s--- got ---\n%s%!"
                  i spec want got
              end
            end);
        loop (i + !concurrency)
      end
    in
    loop w;
    close_out_noerr oc
  in
  let threads = List.init !concurrency (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  Printf.eprintf "tvs_loadgen: %d ok (%d cached), %d failed, %d mismatched of %d jobs\n%!"
    (Atomic.get ok) (Atomic.get cached) (Atomic.get failed) (Atomic.get mismatched) !count;
  if Atomic.get failed > 0 || Atomic.get mismatched > 0 then exit 1

let run_one job =
  let ic, oc = connect () in
  (match submit_and_wait ic oc job with
  | Error m -> die "job failed: %s" m
  | Ok j -> (
      match str_field "output" j with
      | Some out -> print_string out
      | None -> die "done event carried no output field"));
  close_out_noerr oc

let run_wait_idle () =
  let rec poll () =
    match request_event Protocol.Status "status" with
    | Error m -> die "status poll failed: %s" m
    | Ok j -> (
        let queue = match Json.member "queue" j with Some (Json.Int n) -> n | _ -> -1 in
        match (queue, bool_field "running" j) with
        | 0, Some false -> ()
        | _ ->
            Thread.delay 0.2;
            poll ())
  in
  poll ()

let () =
  Arg.parse specs (fun a -> die "unexpected argument %S" a) usage;
  if !status then
    match request_event Protocol.Status "status" with
    | Ok j -> print_endline (Json.to_string j)
    | Error m -> die "status failed: %s" m
  else if !wait_idle then run_wait_idle ()
  else if !shutdown then
    match request_event Protocol.Shutdown "shutting-down" with
    | Ok _ -> ()
    | Error m -> die "shutdown failed: %s" m
  else if !one <> "" then run_one (Protocol.default_job (Protocol.Spec !one))
  else if !one_bench <> "" then begin
    let text = In_channel.with_open_bin !one_bench In_channel.input_all in
    run_one (Protocol.default_job (Protocol.Bench text))
  end
  else run_load ()
